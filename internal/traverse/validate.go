package traverse

import (
	"fmt"

	"slimgraph/internal/graph"
)

// ValidateTree checks a BFS result against its graph in the style of the
// Graph500 output validator: parent edges must exist, levels must be
// consistent (dist[v] == dist[parent[v]] + 1), the root must be its own
// parent at level 0, reachability must agree between Parent and Dist, and
// no graph edge may span more than one level. It returns the first
// violation found, or nil.
func ValidateTree(g *graph.Graph, res *BFSResult, root graph.NodeID) error {
	n := g.N()
	if len(res.Parent) != n || len(res.Dist) != n {
		return fmt.Errorf("traverse: result arrays sized %d/%d for n=%d",
			len(res.Parent), len(res.Dist), n)
	}
	if res.Parent[root] != root || res.Dist[root] != 0 {
		return fmt.Errorf("traverse: root %d has parent %d dist %d",
			root, res.Parent[root], res.Dist[root])
	}
	for v := 0; v < n; v++ {
		p := res.Parent[v]
		d := res.Dist[v]
		if (p < 0) != (d < 0) {
			return fmt.Errorf("traverse: vertex %d parent/dist reachability disagree (%d, %d)", v, p, d)
		}
		if p < 0 || graph.NodeID(v) == root {
			continue
		}
		if !g.HasEdge(p, graph.NodeID(v)) {
			return fmt.Errorf("traverse: parent edge (%d, %d) not in graph", p, v)
		}
		if res.Dist[p] != d-1 {
			return fmt.Errorf("traverse: vertex %d at level %d has parent at level %d",
				v, d, res.Dist[p])
		}
	}
	// No edge may span more than one BFS level, and reachability must be
	// closed under adjacency.
	for e := 0; e < g.M(); e++ {
		u, v := g.EdgeEndpoints(graph.EdgeID(e))
		du, dv := res.Dist[u], res.Dist[v]
		if (du < 0) != (dv < 0) {
			return fmt.Errorf("traverse: edge (%d, %d) crosses the reachability frontier", u, v)
		}
		if du >= 0 {
			diff := du - dv
			if diff < -1 || diff > 1 {
				return fmt.Errorf("traverse: edge (%d, %d) spans levels %d and %d", u, v, du, dv)
			}
		}
	}
	return nil
}
