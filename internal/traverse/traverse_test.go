package traverse

import (
	"math"
	"testing"
	"testing/quick"

	"slimgraph/internal/gen"
	"slimgraph/internal/graph"
	"slimgraph/internal/rng"
)

func TestBFSPath(t *testing.T) {
	g := gen.Path(10)
	res := BFS(g, 0, 1)
	for v := 0; v < 10; v++ {
		if res.Dist[v] != int32(v) {
			t.Fatalf("dist[%d] = %d, want %d", v, res.Dist[v], v)
		}
	}
	if res.Parent[0] != 0 {
		t.Fatalf("root parent %d", res.Parent[0])
	}
	for v := 1; v < 10; v++ {
		if res.Parent[v] != graph.NodeID(v-1) {
			t.Fatalf("parent[%d] = %d", v, res.Parent[v])
		}
	}
	if res.Reached() != 10 || res.Ecc() != 9 {
		t.Fatalf("reached=%d ecc=%d", res.Reached(), res.Ecc())
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := graph.FromEdges(5, false, []graph.Edge{graph.E(0, 1), graph.E(2, 3)})
	res := BFS(g, 0, 1)
	if res.Dist[2] != -1 || res.Parent[2] != -1 {
		t.Fatal("unreachable vertex has distance")
	}
	if res.Reached() != 2 {
		t.Fatalf("reached = %d", res.Reached())
	}
}

func TestBFSParentEdgesExist(t *testing.T) {
	g := gen.RMAT(10, 8, 0.57, 0.19, 0.19, 3)
	res := BFS(g, 0, 4)
	for v := range res.Parent {
		p := res.Parent[v]
		if p < 0 || p == graph.NodeID(v) {
			continue
		}
		if !g.HasEdge(p, graph.NodeID(v)) {
			t.Fatalf("parent edge (%d, %d) not in graph", p, v)
		}
		if res.Dist[v] != res.Dist[p]+1 {
			t.Fatalf("dist[%d]=%d but dist[parent]=%d", v, res.Dist[v], res.Dist[p])
		}
	}
}

func TestBFSParallelMatchesSequentialDistances(t *testing.T) {
	g := gen.RMAT(11, 8, 0.57, 0.19, 0.19, 7)
	seq := BFS(g, 0, 1)
	par := BFS(g, 0, 8)
	for v := range seq.Dist {
		if seq.Dist[v] != par.Dist[v] {
			t.Fatalf("dist[%d]: seq %d par %d", v, seq.Dist[v], par.Dist[v])
		}
	}
}

func TestDijkstraUnweightedMatchesBFS(t *testing.T) {
	g := gen.ErdosRenyi(300, 1200, 5)
	bfs := BFS(g, 0, 1)
	dist, parent := Dijkstra(g, 0)
	for v := range dist {
		if bfs.Dist[v] < 0 {
			if !math.IsInf(dist[v], 1) {
				t.Fatalf("vertex %d: BFS unreachable, Dijkstra %v", v, dist[v])
			}
			continue
		}
		if dist[v] != float64(bfs.Dist[v]) {
			t.Fatalf("vertex %d: Dijkstra %v, BFS %d", v, dist[v], bfs.Dist[v])
		}
	}
	if parent[0] != 0 {
		t.Fatal("root parent wrong")
	}
}

func TestDijkstraWeightedSmall(t *testing.T) {
	// 0 -1- 1 -1- 2, plus a direct heavy edge 0-2.
	g := graph.FromWeightedEdges(3, false, []graph.Edge{
		graph.WE(0, 1, 1), graph.WE(1, 2, 1), graph.WE(0, 2, 5),
	})
	dist, _ := Dijkstra(g, 0)
	if dist[2] != 2 {
		t.Fatalf("dist[2] = %v, want 2 (via vertex 1)", dist[2])
	}
}

func TestDeltaSteppingMatchesDijkstraProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := gen.WithUniformWeights(gen.ErdosRenyi(150, 600, seed), 1, 10, seed+1)
		want, _ := Dijkstra(g, 0)
		for _, workers := range []int{1, 4} {
			got := DeltaStepping(g, 0, 0, workers)
			for v := range want {
				if math.IsInf(want[v], 1) != math.IsInf(got[v], 1) {
					return false
				}
				if !math.IsInf(want[v], 1) && math.Abs(want[v]-got[v]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaSteppingExplicitDelta(t *testing.T) {
	g := gen.WithUniformWeights(gen.Grid2D(10, 10, true), 1, 4, 9)
	want, _ := Dijkstra(g, 0)
	for _, delta := range []float64{0.5, 2, 100} {
		got := DeltaStepping(g, 0, delta, 2)
		for v := range want {
			if math.Abs(want[v]-got[v]) > 1e-9 {
				t.Fatalf("delta=%v vertex %d: %v vs %v", delta, v, got[v], want[v])
			}
		}
	}
}

func TestDoubleSweepDiameterPath(t *testing.T) {
	g := gen.Path(50)
	if d := DoubleSweepDiameter(g, 25, 1); d != 49 {
		t.Fatalf("path diameter = %d, want 49", d)
	}
	c := gen.Cycle(10)
	if d := DoubleSweepDiameter(c, 0, 1); d != 5 {
		t.Fatalf("cycle diameter = %d, want 5", d)
	}
}

func TestAveragePathLength(t *testing.T) {
	g := gen.Complete(10)
	apl := AveragePathLength(g, []graph.NodeID{0, 1, 2}, 1)
	if apl != 1 {
		t.Fatalf("complete graph APL = %v, want 1", apl)
	}
	p := gen.Path(3) // from 0: dists 1, 2 -> mean 1.5
	if apl := AveragePathLength(p, []graph.NodeID{0}, 1); apl != 1.5 {
		t.Fatalf("path APL = %v, want 1.5", apl)
	}
}

func TestBFSRandomizedDistancesTriangleInequality(t *testing.T) {
	// Property: for any edge (u, v), |dist[u] - dist[v]| <= 1.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		g := gen.ErdosRenyi(100, 300, seed)
		root := graph.NodeID(r.Intn(100))
		res := BFS(g, root, 4)
		for e := 0; e < g.M(); e++ {
			u, v := g.EdgeEndpoints(graph.EdgeID(e))
			du, dv := res.Dist[u], res.Dist[v]
			if (du < 0) != (dv < 0) {
				return false // one endpoint reachable, the other not
			}
			if du >= 0 && (du-dv > 1 || dv-du > 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBFSRMAT14(b *testing.B) {
	g := gen.RMAT(14, 8, 0.57, 0.19, 0.19, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BFS(g, 0, 0)
	}
}

func BenchmarkDeltaSteppingGrid(b *testing.B) {
	g := gen.WithUniformWeights(gen.Grid2D(200, 200, true), 1, 8, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DeltaStepping(g, 0, 0, 0)
	}
}

func TestBFSScratchReusedAcrossLevels(t *testing.T) {
	// A long path maximizes level count (one frontier vertex per level, so
	// every level runs inline regardless of the worker setting). Before the
	// per-traversal scratch, BFS allocated fresh per-worker next-frontier
	// slices every level: >= 2 allocations x 2047 levels here. With reuse,
	// the whole traversal stays within a small constant budget.
	g := gen.Path(2048)
	const budget = 64
	for _, workers := range []int{1, 4} {
		allocs := testing.AllocsPerRun(5, func() { BFS(g, 0, workers) })
		if allocs > budget {
			t.Errorf("BFS workers=%d: %.0f allocs per traversal, budget %d (per-level scratch leak?)",
				workers, allocs, budget)
		}
		allocs = testing.AllocsPerRun(5, func() { BFSOn(g, 0, workers) })
		if allocs > budget {
			t.Errorf("BFSOn workers=%d: %.0f allocs per traversal, budget %d (per-level scratch leak?)",
				workers, allocs, budget)
		}
	}
}
