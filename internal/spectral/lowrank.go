package spectral

import (
	"math"

	"slimgraph/internal/graph"
	"slimgraph/internal/rng"
)

// LowRankResult reports the accuracy and cost of a clustered low-rank
// approximation (§7.4): the baseline reconstructs each cluster's adjacency
// block from its top-r eigenpairs and loses all inter-cluster edges, which
// is why the paper (and this reproduction) observe very high error rates
// alongside O(n_c^2) working storage.
type LowRankResult struct {
	Rank           int
	Clusters       int
	LargestCluster int
	FalsePositives int64 // predicted edges absent from the original
	FalseNegatives int64 // original edges lost (incl. all inter-cluster)
	TrueEdges      int64 // m of the original graph
	StorageFloats  int64 // floats kept: sum over clusters of rank*(n_c+1)
}

// ErrorRate returns (FP + FN) / m — the paper's "very high error rates"
// headline number.
func (r *LowRankResult) ErrorRate() float64 {
	if r.TrueEdges == 0 {
		return 0
	}
	return float64(r.FalsePositives+r.FalseNegatives) / float64(r.TrueEdges)
}

// LowRankApprox clusters vertices into contiguous blocks of clusterSize and
// approximates each block's adjacency matrix by its top-rank eigenpairs
// (power iteration with deflation), then thresholds the reconstruction at
// 0.5 to predict edges. All inter-cluster edges are unrepresentable and
// count as false negatives — faithful to clustered SVD schemes, which only
// store per-cluster factors.
func LowRankApprox(g *graph.Graph, clusterSize, rank int, seed uint64) *LowRankResult {
	if clusterSize < 1 {
		panic("spectral: clusterSize must be >= 1")
	}
	if rank < 1 {
		panic("spectral: rank must be >= 1")
	}
	n := g.N()
	res := &LowRankResult{Rank: rank, TrueEdges: int64(g.M())}
	for base := 0; base < n; base += clusterSize {
		end := base + clusterSize
		if end > n {
			end = n
		}
		size := end - base
		res.Clusters++
		if size > res.LargestCluster {
			res.LargestCluster = size
		}
		r := rank
		if r > size {
			r = size
		}
		res.StorageFloats += int64(r) * int64(size+1)
		// Dense adjacency block.
		block := make([]float64, size*size)
		for u := base; u < end; u++ {
			nbrs, eids := g.NeighborEdges(graph.NodeID(u))
			for i, v := range nbrs {
				if int(v) >= base && int(v) < end {
					block[(u-base)*size+(int(v)-base)] = g.EdgeWeight(eids[i])
				}
			}
		}
		approx := lowRankReconstruct(block, size, r, seed+uint64(base))
		// Compare reconstruction against the true block (upper triangle).
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				truth := block[i*size+j] != 0
				pred := approx[i*size+j] >= 0.5
				switch {
				case pred && !truth:
					res.FalsePositives++
				case !pred && truth:
					res.FalseNegatives++
				}
			}
		}
	}
	// Every inter-cluster edge is lost by construction.
	for e := 0; e < g.M(); e++ {
		u, v := g.EdgeEndpoints(graph.EdgeID(e))
		if int(u)/clusterSize != int(v)/clusterSize {
			res.FalseNegatives++
		}
	}
	return res
}

// lowRankReconstruct returns sum_{i<rank} lambda_i v_i v_i^T of the dense
// symmetric matrix a (size x size), using power iteration with deflation.
func lowRankReconstruct(a []float64, size, rank int, seed uint64) []float64 {
	r := rng.New(seed)
	type pair struct {
		lambda float64
		vec    []float64
	}
	var pairs []pair
	matvec := func(x, y []float64) {
		for i := 0; i < size; i++ {
			s := 0.0
			row := a[i*size : (i+1)*size]
			for j, v := range x {
				s += row[j] * v
			}
			// Deflate previously found eigenpairs.
			y[i] = s
		}
		for _, p := range pairs {
			dot := 0.0
			for j := range x {
				dot += p.vec[j] * x[j]
			}
			for i := range y {
				y[i] -= p.lambda * dot * p.vec[i]
			}
		}
	}
	x := make([]float64, size)
	y := make([]float64, size)
	for k := 0; k < rank; k++ {
		for i := range x {
			x[i] = r.Float64() - 0.5
		}
		lambda := 0.0
		for it := 0; it < 100; it++ {
			matvec(x, y)
			norm := 0.0
			for _, v := range y {
				norm += v * v
			}
			norm = math.Sqrt(norm)
			if norm < 1e-12 {
				lambda = 0
				break
			}
			for i := range x {
				x[i] = y[i] / norm
			}
			lambda = norm
		}
		if lambda == 0 {
			break
		}
		// Recover the signed eigenvalue via the Rayleigh quotient (power
		// iteration's norm is |lambda|).
		matvec(x, y)
		rq := 0.0
		for i := range x {
			rq += x[i] * y[i]
		}
		vec := make([]float64, size)
		copy(vec, x)
		pairs = append(pairs, pair{lambda: rq, vec: vec})
	}
	out := make([]float64, size*size)
	for _, p := range pairs {
		for i := 0; i < size; i++ {
			for j := 0; j < size; j++ {
				out[i*size+j] += p.lambda * p.vec[i] * p.vec[j]
			}
		}
	}
	return out
}
