package spectral

import (
	"math"
	"testing"

	"slimgraph/internal/gen"
	"slimgraph/internal/graph"
	"slimgraph/internal/rng"
)

func TestLaplacianMatVecConstantVectorIsZero(t *testing.T) {
	// L * 1 = 0 for any graph: the Laplacian nullspace contains the
	// all-ones vector.
	g := gen.RMAT(8, 8, 0.57, 0.19, 0.19, 3)
	x := make([]float64, g.N())
	y := make([]float64, g.N())
	for i := range x {
		x[i] = 3.7
	}
	LaplacianMatVec(g, x, y, 2)
	for i, v := range y {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("y[%d] = %v, want 0", i, v)
		}
	}
}

func TestQuadraticFormMatchesMatVec(t *testing.T) {
	g := gen.WithUniformWeights(gen.ErdosRenyi(100, 400, 5), 1, 3, 6)
	r := rng.New(7)
	x := make([]float64, g.N())
	for i := range x {
		x[i] = r.Float64() - 0.5
	}
	y := make([]float64, g.N())
	LaplacianMatVec(g, x, y, 1)
	dot := 0.0
	for i := range x {
		dot += x[i] * y[i]
	}
	qf := QuadraticForm(g, x)
	if math.Abs(dot-qf) > 1e-9*math.Abs(qf) {
		t.Fatalf("x^T L x: matvec %v, edgewise %v", dot, qf)
	}
}

func TestMaxEigenvalueKnown(t *testing.T) {
	// Complete graph K_n Laplacian has eigenvalue n (multiplicity n-1).
	g := gen.Complete(10)
	lam := MaxEigenvalue(g, 200, 1, 1)
	if math.Abs(lam-10) > 1e-6 {
		t.Fatalf("K10 lambda_max = %v, want 10", lam)
	}
	// Path P2 (single edge): eigenvalues {0, 2}.
	p := gen.Path(2)
	lam = MaxEigenvalue(p, 200, 1, 1)
	if math.Abs(lam-2) > 1e-6 {
		t.Fatalf("P2 lambda_max = %v, want 2", lam)
	}
}

func TestMaxEigenvalueBoundedByTwiceMaxDegree(t *testing.T) {
	// lambda_max <= 2 * max weighted degree for any graph.
	g := gen.BarabasiAlbert(500, 3, 9)
	lam := MaxEigenvalue(g, 100, 2, 2)
	bound := 2 * float64(g.MaxDegree())
	if lam > bound+1e-6 {
		t.Fatalf("lambda %v exceeds bound %v", lam, bound)
	}
	if lam < float64(g.MaxDegree()) {
		t.Fatalf("lambda %v below max degree %d (impossible for Laplacian)", lam, g.MaxDegree())
	}
}

func TestQuadFormErrorIdenticalGraphsIsZero(t *testing.T) {
	g := gen.ErdosRenyi(200, 800, 3)
	if err := QuadFormError(g, g, 10, 1); err != 0 {
		t.Fatalf("self error %v", err)
	}
}

func TestQuadFormErrorDetectsEdgeLoss(t *testing.T) {
	g := gen.ErdosRenyi(100, 500, 3)
	// Remove half the edges with no reweighting: big spectral error.
	h := g.FilterEdges(func(e graph.EdgeID) bool { return e%2 == 0 }, nil)
	err := QuadFormError(g, h, 20, 2)
	if err < 0.2 {
		t.Fatalf("halved graph spectral error %v suspiciously low", err)
	}
}

func TestEffectiveResistanceProxy(t *testing.T) {
	g := gen.Star(5) // hub degree 4, leaves degree 1
	e, _ := g.FindEdge(0, 1)
	if p := EffectiveResistanceProxy(g, e); p != 1 {
		t.Fatalf("star edge proxy %v, want 1 (min degree 1)", p)
	}
	k := gen.Complete(5) // all degrees 4
	e2, _ := k.FindEdge(0, 1)
	if p := EffectiveResistanceProxy(k, e2); p != 0.25 {
		t.Fatalf("K5 edge proxy %v, want 0.25", p)
	}
}

func TestLowRankPerfectOnFullRank(t *testing.T) {
	// A clique block is rank-revealing enough: with rank == clusterSize the
	// reconstruction inside each cluster is near-exact, so errors are only
	// the inter-cluster losses.
	g := gen.Complete(12)
	res := LowRankApprox(g, 12, 12, 1)
	if res.FalseNegatives != 0 || res.FalsePositives != 0 {
		t.Fatalf("full-rank single-cluster reconstruction not exact: %+v", res)
	}
	if res.ErrorRate() != 0 {
		t.Fatalf("error rate %v", res.ErrorRate())
	}
}

func TestLowRankLosesInterClusterEdges(t *testing.T) {
	// Two cliques joined by one edge, clusters split exactly at the seam.
	edges := []graph.Edge{}
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			edges = append(edges, graph.E(graph.NodeID(u), graph.NodeID(v)))
			edges = append(edges, graph.E(graph.NodeID(u+5), graph.NodeID(v+5)))
		}
	}
	edges = append(edges, graph.E(0, 5))
	g := graph.FromEdges(10, false, edges)
	res := LowRankApprox(g, 5, 5, 1)
	if res.FalseNegatives < 1 {
		t.Fatalf("inter-cluster edge not counted lost: %+v", res)
	}
}

func TestLowRankLowRankHasHighErrorOnSparse(t *testing.T) {
	// The paper's observation: clustered SVD at small rank has very high
	// error on sparse irregular graphs.
	g := gen.RMAT(9, 4, 0.57, 0.19, 0.19, 3)
	res := LowRankApprox(g, 64, 2, 1)
	if res.ErrorRate() < 0.3 {
		t.Fatalf("low-rank error rate %v unexpectedly low", res.ErrorRate())
	}
	if res.StorageFloats <= 0 || res.Clusters <= 0 {
		t.Fatalf("bad bookkeeping: %+v", res)
	}
}

func BenchmarkQuadFormErrorRMAT12(b *testing.B) {
	g := gen.RMAT(12, 8, 0.57, 0.19, 0.19, 1)
	h := g.FilterEdges(func(e graph.EdgeID) bool { return e%2 == 0 }, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		QuadFormError(g, h, 8, uint64(i))
	}
}
