// Package spectral provides Laplacian operators, eigenvalue estimation, and
// the clustered low-rank (SVD) approximation baseline.
//
// Spectral sparsification (§4.2.1) promises to preserve the graph spectrum
// — the eigenvalues of the Laplacian L = D - A. This package supplies the
// measurement side: power iteration for extreme eigenvalues and a
// quadratic-form comparison that bounds how far a sparsifier's Laplacian is
// from the original on random test vectors. It also implements the
// clustered low-rank approximation of §4.6/§7.4, the baseline the paper
// shows to have prohibitive storage and very high error rates.
package spectral

import (
	"math"

	"slimgraph/internal/graph"
	"slimgraph/internal/parallel"
	"slimgraph/internal/rng"
)

// LaplacianMatVec computes y = L x = (D - A) x for the weighted Laplacian.
func LaplacianMatVec(g *graph.Graph, x, y []float64, workers int) {
	n := g.N()
	parallel.For(n, workers, func(v int) {
		nbrs, eids := g.NeighborEdges(graph.NodeID(v))
		sum := 0.0
		deg := 0.0
		for i, w := range nbrs {
			wt := g.EdgeWeight(eids[i])
			deg += wt
			sum += wt * x[w]
		}
		y[v] = deg*x[v] - sum
	})
}

// RayleighQuotient returns x^T L x / x^T x.
func RayleighQuotient(g *graph.Graph, x []float64, workers int) float64 {
	y := make([]float64, len(x))
	LaplacianMatVec(g, x, y, workers)
	num, den := 0.0, 0.0
	for i := range x {
		num += x[i] * y[i]
		den += x[i] * x[i]
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// QuadraticForm returns x^T L x = sum over edges w_uv (x_u - x_v)^2,
// computed edge-wise (numerically stable and cheap).
func QuadraticForm(g *graph.Graph, x []float64) float64 {
	s := 0.0
	for e := 0; e < g.M(); e++ {
		u, v := g.EdgeEndpoints(graph.EdgeID(e))
		d := x[u] - x[v]
		s += g.EdgeWeight(graph.EdgeID(e)) * d * d
	}
	return s
}

// MaxEigenvalue estimates the largest Laplacian eigenvalue by power
// iteration with the given iteration count (64 is plenty for benchmark
// precision).
func MaxEigenvalue(g *graph.Graph, iters int, seed uint64, workers int) float64 {
	n := g.N()
	if n == 0 {
		return 0
	}
	if iters <= 0 {
		iters = 64
	}
	r := rng.New(seed)
	x := make([]float64, n)
	for i := range x {
		x[i] = r.Float64() - 0.5
	}
	y := make([]float64, n)
	lambda := 0.0
	for it := 0; it < iters; it++ {
		LaplacianMatVec(g, x, y, workers)
		norm := 0.0
		for _, v := range y {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return 0
		}
		for i := range x {
			x[i] = y[i] / norm
		}
		lambda = norm
	}
	return lambda
}

// QuadFormError measures sparsifier quality: the maximum relative error
// |x^T L_H x - x^T L_G x| / x^T L_G x over the given number of random test
// vectors (centered to be orthogonal to the all-ones nullspace). A
// (1±eps) spectral sparsifier keeps this below eps for all x; sampling
// random vectors gives the empirical counterpart used in the evaluation.
func QuadFormError(orig, compressed *graph.Graph, trials int, seed uint64) float64 {
	if orig.N() != compressed.N() {
		panic("spectral: graphs must share a vertex set")
	}
	n := orig.N()
	r := rng.New(seed)
	worst := 0.0
	x := make([]float64, n)
	for t := 0; t < trials; t++ {
		mean := 0.0
		for i := range x {
			x[i] = r.Float64() - 0.5
			mean += x[i]
		}
		mean /= float64(n)
		for i := range x {
			x[i] -= mean
		}
		qg := QuadraticForm(orig, x)
		if qg <= 1e-12 {
			continue
		}
		qh := QuadraticForm(compressed, x)
		if err := math.Abs(qh-qg) / qg; err > worst {
			worst = err
		}
	}
	return worst
}

// EffectiveResistanceProxy returns 1/min(du, dv) per edge — the degree-based
// upper bound on effective resistance that the paper's practical spectral
// sparsifier samples with (§4.2.1: p_uv = min(1, Upsilon/min(du, dv))).
func EffectiveResistanceProxy(g *graph.Graph, e graph.EdgeID) float64 {
	u, v := g.EdgeEndpoints(e)
	du, dv := g.Degree(u), g.Degree(v)
	min := du
	if dv < min {
		min = dv
	}
	if min == 0 {
		return 1
	}
	return 1 / float64(min)
}
