// Package ldd implements low-diameter decomposition with exponential shifts
// (Miller, Peng, Xu; MPX). It is the mapping that Slim Graph's subgraph
// kernels use to derive O(k)-spanners (§4.5.2–4.5.3): every vertex draws an
// exponential shift delta_v ~ Exp(beta) and a multi-source BFS with start
// times (delta_max - delta_v) partitions the graph into clusters whose
// radius is O(log n / beta) w.h.p. The BFS forest inside each cluster is
// the cluster's spanning tree.
package ldd

import (
	"math"

	"slimgraph/internal/graph"
	"slimgraph/internal/rng"
)

// Decomposition is the vertex->cluster mapping of §4.5.2 plus the BFS
// forest used by the spanner kernel.
type Decomposition struct {
	// Cluster[v] is the center vertex of v's cluster.
	Cluster []graph.NodeID
	// Parent[v] is v's parent in the intra-cluster BFS tree; centers have
	// Parent[v] == v.
	Parent []graph.NodeID
	// Centers lists the cluster centers in activation order.
	Centers []graph.NodeID
}

// NumClusters returns the number of clusters.
func (d *Decomposition) NumClusters() int { return len(d.Centers) }

// ClusterIndex returns a dense relabeling: idx[v] in [0, NumClusters) for
// every vertex, consistent with Cluster.
func (d *Decomposition) ClusterIndex() []int32 {
	centerIdx := make(map[graph.NodeID]int32, len(d.Centers))
	for i, c := range d.Centers {
		centerIdx[c] = int32(i)
	}
	idx := make([]int32, len(d.Cluster))
	for v, c := range d.Cluster {
		idx[v] = centerIdx[c]
	}
	return idx
}

// Members returns the vertex list of every cluster, indexed like Centers.
func (d *Decomposition) Members() [][]graph.NodeID {
	idx := d.ClusterIndex()
	members := make([][]graph.NodeID, len(d.Centers))
	for v := range d.Cluster {
		i := idx[v]
		members[i] = append(members[i], graph.NodeID(v))
	}
	return members
}

// Decompose runs the MPX decomposition with parameter beta > 0. Larger beta
// means earlier fragmentation: more, smaller clusters. Vertex v is captured
// by the cluster of u exactly when start(u) + dist(u, v) is the global
// minimum over centers, with start(v) = delta_max - delta_v — implemented
// exactly (continuous start times, no rounding) as a Dijkstra over unit
// edge lengths. Deterministic for a fixed seed.
func Decompose(g *graph.Graph, beta float64, seed uint64) *Decomposition {
	if beta <= 0 {
		panic("ldd: beta must be positive")
	}
	n := g.N()
	d := &Decomposition{
		Cluster: make([]graph.NodeID, n),
		Parent:  make([]graph.NodeID, n),
	}
	for i := range d.Cluster {
		d.Cluster[i] = -1
		d.Parent[i] = -1
	}
	if n == 0 {
		return d
	}
	r := rng.New(seed)
	shift := make([]float64, n)
	maxShift := 0.0
	for v := range shift {
		shift[v] = r.ExpFloat64(beta)
		if shift[v] > maxShift {
			maxShift = shift[v]
		}
	}
	pq := newArrivalHeap(n + g.NumArcs()/2)
	for v := 0; v < n; v++ {
		pq.push(arrival{
			key: maxShift - shift[v], v: graph.NodeID(v),
			from: -1, center: graph.NodeID(v),
		})
	}
	claimed := 0
	for pq.len() > 0 && claimed < n {
		a := pq.pop()
		if d.Cluster[a.v] >= 0 {
			continue
		}
		d.Cluster[a.v] = a.center
		if a.from < 0 {
			d.Parent[a.v] = a.v
			d.Centers = append(d.Centers, a.v)
		} else {
			d.Parent[a.v] = a.from
		}
		claimed++
		for _, w := range g.Neighbors(a.v) {
			if d.Cluster[w] < 0 {
				pq.push(arrival{key: a.key + 1, v: w, from: a.v, center: a.center})
			}
		}
	}
	return d
}

type arrival struct {
	key    float64
	v      graph.NodeID
	from   graph.NodeID // claiming BFS parent; -1 when self-start
	center graph.NodeID
}

// arrivalHeap is a hand-rolled binary min-heap over arrivals (no
// container/heap interface boxing; this loop is the spanner's hot path).
type arrivalHeap struct{ items []arrival }

func newArrivalHeap(capacity int) *arrivalHeap {
	return &arrivalHeap{items: make([]arrival, 0, capacity)}
}

func (h *arrivalHeap) len() int { return len(h.items) }

func (h *arrivalHeap) less(i, j int) bool {
	if h.items[i].key != h.items[j].key {
		return h.items[i].key < h.items[j].key
	}
	return h.items[i].v < h.items[j].v // deterministic tie-break
}

func (h *arrivalHeap) push(a arrival) {
	h.items = append(h.items, a)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *arrivalHeap) pop() arrival {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.less(l, smallest) {
			smallest = l
		}
		if r < last && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top
}

// BetaForSpanner maps the spanner parameter k >= 1 of §4.5.3 to the MPX
// beta = ln(n)/k (Miller et al.): a vertex's probability of seeing more
// than one cluster within a hop is ~n^{-1/k}, giving O(n^{1+1/k}) spanner
// edges and cluster radius O(k) w.h.p.
func BetaForSpanner(n, k int) float64 {
	if n < 2 {
		return 1
	}
	if k < 1 {
		k = 1
	}
	return math.Log(float64(n)) / float64(k)
}

// TreeEdges returns the canonical EdgeIDs of the intra-cluster BFS forest.
func (d *Decomposition) TreeEdges(g *graph.Graph) []graph.EdgeID {
	var out []graph.EdgeID
	for v := range d.Parent {
		p := d.Parent[v]
		if p < 0 || p == graph.NodeID(v) {
			continue
		}
		e, ok := g.FindEdge(p, graph.NodeID(v))
		if !ok {
			panic("ldd: BFS parent edge missing from graph")
		}
		out = append(out, e)
	}
	return out
}
