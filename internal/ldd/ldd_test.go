package ldd

import (
	"testing"

	"slimgraph/internal/gen"
	"slimgraph/internal/graph"
	"slimgraph/internal/traverse"
)

func TestEveryVertexClustered(t *testing.T) {
	g := gen.RMAT(10, 8, 0.57, 0.19, 0.19, 3)
	d := Decompose(g, 0.5, 1)
	for v, c := range d.Cluster {
		if c < 0 {
			t.Fatalf("vertex %d unclustered", v)
		}
		if d.Parent[v] < 0 {
			t.Fatalf("vertex %d has no parent", v)
		}
	}
}

func TestCentersSelfParent(t *testing.T) {
	g := gen.Grid2D(20, 20, false)
	d := Decompose(g, 0.8, 2)
	for _, c := range d.Centers {
		if d.Cluster[c] != c || d.Parent[c] != c {
			t.Fatalf("center %d: cluster=%d parent=%d", c, d.Cluster[c], d.Parent[c])
		}
	}
	if d.NumClusters() != len(d.Centers) {
		t.Fatal("NumClusters mismatch")
	}
}

func TestParentEdgesExistAndStayInCluster(t *testing.T) {
	g := gen.ErdosRenyi(500, 2000, 5)
	d := Decompose(g, 0.7, 3)
	for v := range d.Parent {
		p := d.Parent[v]
		if p == graph.NodeID(v) {
			continue
		}
		if !g.HasEdge(p, graph.NodeID(v)) {
			t.Fatalf("parent edge (%d, %d) missing", p, v)
		}
		if d.Cluster[p] != d.Cluster[v] {
			t.Fatalf("parent of %d in different cluster", v)
		}
	}
}

func TestTreeEdgesFormForest(t *testing.T) {
	g := gen.RMAT(9, 8, 0.57, 0.19, 0.19, 7)
	d := Decompose(g, 0.5, 11)
	edges := d.TreeEdges(g)
	// A forest over n vertices with c trees has n - c edges; here every
	// cluster is one tree.
	want := g.N() - d.NumClusters()
	if len(edges) != want {
		t.Fatalf("forest edges %d, want %d", len(edges), want)
	}
}

func TestLargerBetaMoreClusters(t *testing.T) {
	g := gen.Grid2D(30, 30, false)
	small := Decompose(g, 0.1, 1).NumClusters()
	large := Decompose(g, 2.0, 1).NumClusters()
	if small >= large {
		t.Fatalf("beta=0.1 gave %d clusters, beta=2 gave %d; want increase", small, large)
	}
}

func TestClusterRadiusBounded(t *testing.T) {
	// Cluster radius is bounded by the max shift, which the decomposition
	// realizes as BFS rounds. Verify by BFS from each center restricted to
	// its cluster.
	g := gen.Grid2D(25, 25, false)
	beta := BetaForSpanner(g.N(), 4)
	d := Decompose(g, beta, 9)
	idx := d.ClusterIndex()
	// Build cluster-restricted distance via parent chains.
	for v := range d.Parent {
		steps := 0
		u := graph.NodeID(v)
		for d.Parent[u] != u {
			u = d.Parent[u]
			steps++
			if steps > g.N() {
				t.Fatalf("parent chain of %d does not terminate", v)
			}
		}
		if d.Cluster[v] != u {
			t.Fatalf("parent chain of %d ends at %d, cluster says %d", v, u, d.Cluster[v])
		}
		_ = idx
	}
}

func TestClusterIndexDense(t *testing.T) {
	g := gen.ErdosRenyi(200, 600, 13)
	d := Decompose(g, 0.6, 17)
	idx := d.ClusterIndex()
	seen := make([]bool, d.NumClusters())
	for _, i := range idx {
		if int(i) >= d.NumClusters() || i < 0 {
			t.Fatalf("index %d out of range", i)
		}
		seen[i] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("cluster %d empty", i)
		}
	}
}

func TestMembersPartition(t *testing.T) {
	g := gen.RMAT(8, 6, 0.57, 0.19, 0.19, 3)
	d := Decompose(g, 0.4, 5)
	members := d.Members()
	total := 0
	for i, mem := range members {
		total += len(mem)
		for _, v := range mem {
			if d.Cluster[v] != d.Centers[i] {
				t.Fatalf("vertex %d listed in wrong cluster", v)
			}
		}
	}
	if total != g.N() {
		t.Fatalf("members cover %d vertices, want %d", total, g.N())
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	g := gen.ErdosRenyi(300, 900, 3)
	a := Decompose(g, 0.5, 42)
	b := Decompose(g, 0.5, 42)
	for v := range a.Cluster {
		if a.Cluster[v] != b.Cluster[v] {
			t.Fatal("same seed, different clustering")
		}
	}
}

func TestConnectedClusters(t *testing.T) {
	// Every cluster must be connected: BFS inside the induced subgraph of a
	// cluster from its center must reach all members.
	g := gen.Grid2D(15, 15, true)
	d := Decompose(g, 0.5, 21)
	for i, mem := range d.Members() {
		sub, remap := g.InducedSubgraph(mem)
		center := remap[d.Centers[i]]
		res := traverse.BFS(sub, center, 1)
		if res.Reached() != len(mem) {
			t.Fatalf("cluster %d disconnected: reached %d of %d", i, res.Reached(), len(mem))
		}
	}
}

func BenchmarkDecomposeRMAT13(b *testing.B) {
	g := gen.RMAT(13, 8, 0.57, 0.19, 0.19, 1)
	beta := BetaForSpanner(g.N(), 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decompose(g, beta, uint64(i))
	}
}
