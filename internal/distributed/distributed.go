// Package distributed provides the partitioning layer of the paper's
// distributed-memory pipeline (§3.2, §7.3): degree-aware 1D vertex
// partitioning over any graph.Adjacency, partition diagnostics (edge cut),
// distributed reductions (degree histograms), and a simulated multi-rank
// compression engine dispatching through the scheme registry.
//
// Substitution note (see DESIGN.md §3): the paper compresses graphs that
// exceed single-node memory with MPI Remote Memory Access across Cray XC
// nodes. The relevant structure — and what this package reproduces — is:
//
//  1. vertices are partitioned into contiguous rank-local ranges, balanced
//     by degree so every rank owns a comparable share of the arcs (a
//     distributed CSR's row ownership);
//  2. compression kernels derive every random decision from the global
//     element ID (internal/core's element-keyed streams), so the output is
//     a pure function of (graph, spec, seed) — identical on 1 rank or 64;
//  3. per-rank statistics (arc counts, edge cut, degree histograms) are
//     combined in a deterministic reduction step.
//
// Ranks are goroutines; reductions merge in rank order, so every result is
// deterministic for a fixed seed and independent of scheduling. The
// partitioner consumes the graph.Adjacency interface only, so a succinct
// PackedGraph is partitioned in place without an Unpack call — the same
// ranges internal/cluster's shards compute to agree on vertex ownership
// without exchanging them.
package distributed

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"slimgraph/internal/graph"
	"slimgraph/internal/schemes"
)

// Range is a half-open contiguous vertex range [Lo, Hi) owned by one rank.
type Range struct {
	Lo, Hi int32
}

// Len returns the number of vertices in the range.
func (r Range) Len() int { return int(r.Hi - r.Lo) }

// Contains reports whether v falls in the range.
func (r Range) Contains(v graph.NodeID) bool { return v >= r.Lo && v < r.Hi }

// PartitionByDegree splits [0, n) into parts contiguous ranges balanced by
// vertex weight degree+1 — the degree term balances arc ownership (the work
// of BFS expansion, PageRank pulls, histogram scans), the +1 spreads
// isolated vertices. The split is a pure function of the degree sequence:
// every process that sees the same graph computes the same ranges, which is
// how cluster shards agree on ownership without a metadata exchange. Ranges
// concatenate to exactly [0, n); trailing ranges may be empty when parts
// exceeds what the weights can fill.
func PartitionByDegree(g graph.Adjacency, parts int) []Range {
	if parts < 1 {
		parts = 1
	}
	n := g.N()
	var total int64
	for v := 0; v < n; v++ {
		total += int64(g.Degree(graph.NodeID(v))) + 1
	}
	ranges := make([]Range, parts)
	lo := 0
	var acc int64
	for i := 0; i < parts; i++ {
		// Close part i at the prefix weight nearest its proportional share.
		target := total * int64(i+1) / int64(parts)
		hi := lo
		for hi < n && acc < target {
			acc += int64(g.Degree(graph.NodeID(hi))) + 1
			hi++
		}
		ranges[i] = Range{Lo: int32(lo), Hi: int32(hi)}
		lo = hi
	}
	ranges[parts-1].Hi = int32(n)
	return ranges
}

// Owner returns the index of the range containing v. Ranges must be the
// contiguous cover PartitionByDegree returns.
func Owner(ranges []Range, v graph.NodeID) int {
	return sort.Search(len(ranges), func(i int) bool { return ranges[i].Hi > v })
}

// CutArcs counts arcs (u, w) whose endpoints live in different ranges — the
// 1D edge cut, the communication volume proxy the paper's §3.2 partitioning
// discussion optimizes.
func CutArcs(g graph.Adjacency, ranges []Range) int64 {
	var total int64
	for i := range ranges {
		total += cutArcsOf(g, ranges, ranges[i])
	}
	return total
}

// cutArcsOf counts arcs leaving vertices of r for another range.
func cutArcsOf(g graph.Adjacency, ranges []Range, r Range) int64 {
	var cut int64
	for v := r.Lo; v < r.Hi; v++ {
		g.ForNeighbors(v, func(w graph.NodeID) {
			if !r.Contains(w) {
				cut++
			}
		})
	}
	return cut
}

// HistogramRange returns the out-degree histogram of the vertices in r,
// sized to the local maximum degree plus one.
func HistogramRange(g graph.Adjacency, r Range) []int64 {
	local := make([]int64, 0)
	for v := r.Lo; v < r.Hi; v++ {
		d := g.Degree(v)
		for len(local) <= d {
			local = append(local, 0)
		}
		local[d]++
	}
	return local
}

// MergeHistograms sums partial histograms into one sized to the longest
// part — the reduction step of a distributed degree analysis. Merging in
// slice order keeps the result deterministic (integer sums are associative,
// but a fixed order costs nothing and documents the intent).
func MergeHistograms(parts [][]int64) []int64 {
	var merged []int64
	for _, part := range parts {
		if len(part) > len(merged) {
			grown := make([]int64, len(part))
			copy(grown, merged)
			merged = grown
		}
		for d, c := range part {
			merged[d] += c
		}
	}
	return merged
}

// DegreeHistogram computes the out-degree histogram with a distributed
// reduction: one goroutine per range histograms the vertices it owns and
// the partial histograms merge in rank order. The result matches
// (*graph.Graph).DegreeHistogram but runs over any Adjacency — a packed
// graph is scanned in place.
func DegreeHistogram(g graph.Adjacency, parts int) []int64 {
	ranges := PartitionByDegree(g, parts)
	partials := make([][]int64, len(ranges))
	var wg sync.WaitGroup
	for i := range ranges {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			partials[i] = HistogramRange(g, ranges[i])
		}(i)
	}
	wg.Wait()
	return MergeHistograms(partials)
}

// Engine is a simulated distributed-memory cluster: Ranks compute nodes
// compressing through the scheme registry with a shared base seed.
type Engine struct {
	Ranks int    // number of simulated compute nodes; <= 0 means 4
	Seed  uint64 // base seed for the scheme's element-keyed streams
}

func (e Engine) ranks() int {
	if e.Ranks <= 0 {
		return 4
	}
	return e.Ranks
}

// RankStats reports one rank's share of the input partition.
type RankStats struct {
	Rank     int
	Vertices Range // owned contiguous vertex range
	Arcs     int64 // sum of out-degrees over owned vertices
	CutArcs  int64 // arcs leaving the partition (1D edge cut)
}

// Run is the outcome of a distributed compression.
type Run struct {
	Output *graph.Graph
	// Spec is the canonical registry spelling of the scheme that ran.
	Spec      string
	InputM    int // canonical edge count of the input
	PerRank   []RankStats
	Elapsed   time.Duration // wall clock including the gather
	RanksUsed int
}

// String summarizes the run like the paper's Fig. 8 captions ("#compute
// nodes used for compression: ...").
func (r *Run) String() string {
	return fmt.Sprintf("distributed %s on %d ranks: removed %d edges in %v",
		r.Spec, r.RanksUsed, r.InputM-r.Output.M(), r.Elapsed)
}

// Compress runs any registry scheme (by spec, e.g. "uniform:p=0.6" or
// "spectral:upsilon=2") as a distributed job: the worker budget is the rank
// count and the seed is the engine's. Because every scheme derives its
// random decisions from global element IDs, the output is identical for any
// rank count — the modern replacement for the pre-registry rank-stream
// kernels this package used to carry, whose output depended on the
// partition.
func (e Engine) Compress(g *graph.Graph, spec string) (*Run, error) {
	start := time.Now()
	ranks := e.ranks()
	sch, err := schemes.Parse(spec, schemes.WithSeed(e.Seed), schemes.WithWorkers(ranks))
	if err != nil {
		return nil, err
	}
	ranges := PartitionByDegree(g, ranks)
	stats := make([]RankStats, ranks)
	var wg sync.WaitGroup
	for rank := 0; rank < ranks; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			r := ranges[rank]
			var arcs int64
			for v := r.Lo; v < r.Hi; v++ {
				arcs += int64(g.Degree(v))
			}
			stats[rank] = RankStats{
				Rank: rank, Vertices: r,
				Arcs: arcs, CutArcs: cutArcsOf(g, ranges, r),
			}
		}(rank)
	}
	res, err := sch.Apply(g)
	wg.Wait()
	if err != nil {
		return nil, err
	}
	return &Run{
		Output:    res.Output,
		Spec:      schemes.Spec(sch),
		InputM:    g.M(),
		PerRank:   stats,
		Elapsed:   time.Since(start),
		RanksUsed: ranks,
	}, nil
}
