// Package distributed simulates the paper's distributed-memory compression
// pipeline (§3.2, §7.3).
//
// Substitution note (see DESIGN.md §3): the paper compresses graphs that
// exceed single-node memory with MPI Remote Memory Access across Cray XC
// nodes. The relevant structure — and what this package reproduces — is:
//
//  1. the canonical edge list is partitioned into contiguous rank-local
//     ranges (a distributed CSR's edge ownership);
//  2. every rank runs edge compression kernels over its own partition with
//     a rank-local random stream, with no shared mutable state (the RMA
//     window is write-local/read-remote in the paper; our deletion marks
//     are rank-private slices);
//  3. per-rank statistics (degree histograms, removal counts) are
//     combined in a reduction step.
//
// Ranks are goroutines synchronized by an epoch barrier; the message-
// passing reduction runs over channels. Everything is deterministic for a
// fixed (seed, ranks) pair — matching how the paper reports reproducible
// distributed runs — and independent of scheduling.
package distributed

import (
	"fmt"
	"sync"
	"time"

	"slimgraph/internal/graph"
	"slimgraph/internal/rng"
)

// Engine is a simulated distributed-memory cluster.
type Engine struct {
	Ranks int    // number of simulated compute nodes; <= 0 means 4
	Seed  uint64 // base seed; each rank derives its own stream
}

func (e Engine) ranks() int {
	if e.Ranks <= 0 {
		return 4
	}
	return e.Ranks
}

// RankStats reports one rank's work.
type RankStats struct {
	Rank      int
	EdgesHeld int           // size of the rank-local partition
	Removed   int           // edges this rank's kernels deleted
	Elapsed   time.Duration // rank-local compression time
}

// Run is the outcome of a distributed compression.
type Run struct {
	Output    *graph.Graph
	PerRank   []RankStats
	Elapsed   time.Duration // wall-clock including gather
	RanksUsed int
}

// String summarizes the run like the paper's Fig. 8 captions ("#compute
// nodes used for compression: ...").
func (r *Run) String() string {
	removed := 0
	for _, s := range r.PerRank {
		removed += s.Removed
	}
	return fmt.Sprintf("distributed compression on %d ranks: removed %d edges in %v",
		r.RanksUsed, removed, r.Elapsed)
}

// EdgeDecision is a rank-local edge kernel: it sees the rank index, the
// rank's private random stream, and one owned edge; it returns false to
// delete the edge.
type EdgeDecision func(rank int, r *rng.Rand, e graph.EdgeID, u, v graph.NodeID) bool

// partition returns the half-open range of canonical edges owned by rank.
func partition(m, ranks, rank int) (lo, hi int) {
	per := m / ranks
	rem := m % ranks
	lo = rank*per + min(rank, rem)
	hi = lo + per
	if rank < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// RunEdgeKernel executes the decision kernel over all ranks and gathers the
// compressed graph.
func (e Engine) RunEdgeKernel(g *graph.Graph, kernel EdgeDecision) *Run {
	start := time.Now()
	ranks := e.ranks()
	m := g.M()
	keep := make([]bool, m) // each rank writes only its own range
	stats := make([]RankStats, ranks)
	var wg sync.WaitGroup
	for rank := 0; rank < ranks; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			rankStart := time.Now()
			lo, hi := partition(m, ranks, rank)
			r := rng.New(rng.Hash64(e.Seed, uint64(rank)))
			removed := 0
			for ei := lo; ei < hi; ei++ {
				id := graph.EdgeID(ei)
				u, v := g.EdgeEndpoints(id)
				if kernel(rank, r, id, u, v) {
					keep[ei] = true
				} else {
					removed++
				}
			}
			stats[rank] = RankStats{
				Rank: rank, EdgesHeld: hi - lo, Removed: removed,
				Elapsed: time.Since(rankStart),
			}
		}(rank)
	}
	wg.Wait()
	out := g.FilterEdges(func(e graph.EdgeID) bool { return keep[e] }, nil)
	return &Run{Output: out, PerRank: stats, Elapsed: time.Since(start), RanksUsed: ranks}
}

// UniformSample runs distributed random uniform sampling (the scheme the
// paper used for its first distributed lossy compression of the largest
// public graphs, Fig. 8): each edge stays with probability p.
func (e Engine) UniformSample(g *graph.Graph, p float64) *Run {
	return e.RunEdgeKernel(g, func(rank int, r *rng.Rand, id graph.EdgeID, u, v graph.NodeID) bool {
		return r.Float64() < p
	})
}

// SpectralSparsify runs the distributed variant of the §4.2.1 kernel with
// Υ = p·ln(n) — degree lookups are rank-local reads of the replicated
// degree array, mirroring the RMA get of the paper's implementation.
func (e Engine) SpectralSparsify(g *graph.Graph, upsilon float64) *Run {
	return e.RunEdgeKernel(g, func(rank int, r *rng.Rand, id graph.EdgeID, u, v graph.NodeID) bool {
		minDeg := g.Degree(u)
		if d := g.Degree(v); d < minDeg {
			minDeg = d
		}
		if minDeg == 0 {
			return true
		}
		stay := upsilon / float64(minDeg)
		if stay > 1 {
			stay = 1
		}
		return r.Float64() < stay
	})
}

// DegreeHistogram computes the out-degree histogram with a distributed
// reduction: each rank histograms the vertices it owns and the partial
// histograms merge over a channel — the structure of the Fig. 8 analysis.
func (e Engine) DegreeHistogram(g *graph.Graph) []int64 {
	ranks := e.ranks()
	n := g.N()
	parts := make(chan []int64, ranks)
	var wg sync.WaitGroup
	for rank := 0; rank < ranks; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			lo, hi := partition(n, ranks, rank)
			local := make([]int64, 0)
			for v := lo; v < hi; v++ {
				d := g.Degree(graph.NodeID(v))
				for len(local) <= d {
					local = append(local, 0)
				}
				local[d]++
			}
			parts <- local
		}(rank)
	}
	wg.Wait()
	close(parts)
	var merged []int64
	for part := range parts {
		if len(part) > len(merged) {
			grown := make([]int64, len(part))
			copy(grown, merged)
			merged = grown
		}
		for d, c := range part {
			merged[d] += c
		}
	}
	return merged
}
