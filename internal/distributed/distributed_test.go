package distributed

import (
	"math"
	"testing"

	"slimgraph/internal/gen"
	"slimgraph/internal/graph"
	"slimgraph/internal/rng"
)

func TestPartitionCoversDisjointly(t *testing.T) {
	for _, m := range []int{0, 1, 7, 100, 1001} {
		for _, ranks := range []int{1, 3, 4, 16} {
			covered := 0
			prevHi := 0
			for rank := 0; rank < ranks; rank++ {
				lo, hi := partition(m, ranks, rank)
				if lo != prevHi {
					t.Fatalf("m=%d ranks=%d rank=%d: gap at %d", m, ranks, rank, lo)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != m {
				t.Fatalf("m=%d ranks=%d: covered %d", m, ranks, covered)
			}
		}
	}
}

func TestUniformSampleRatio(t *testing.T) {
	g := gen.RMAT(12, 8, 0.57, 0.19, 0.19, 1)
	e := Engine{Ranks: 8, Seed: 42}
	run := e.UniformSample(g, 0.4)
	ratio := float64(run.Output.M()) / float64(g.M())
	if math.Abs(ratio-0.4) > 0.03 {
		t.Fatalf("ratio %v, want ~0.4", ratio)
	}
	if run.RanksUsed != 8 || len(run.PerRank) != 8 {
		t.Fatalf("rank bookkeeping: %+v", run)
	}
	held := 0
	for _, s := range run.PerRank {
		held += s.EdgesHeld
	}
	if held != g.M() {
		t.Fatalf("ranks held %d edges of %d", held, g.M())
	}
}

func TestDeterministicPerSeedAndRanks(t *testing.T) {
	g := gen.ErdosRenyi(500, 3000, 3)
	a := Engine{Ranks: 4, Seed: 7}.UniformSample(g, 0.5)
	b := Engine{Ranks: 4, Seed: 7}.UniformSample(g, 0.5)
	if a.Output.M() != b.Output.M() {
		t.Fatal("same engine config, different output")
	}
	c := Engine{Ranks: 4, Seed: 8}.UniformSample(g, 0.5)
	if a.Output.M() == c.Output.M() {
		t.Log("different seeds produced same edge count (possible, not checked further)")
	}
}

func TestRemovedAccounting(t *testing.T) {
	g := gen.ErdosRenyi(300, 2000, 5)
	run := Engine{Ranks: 3, Seed: 9}.UniformSample(g, 0.7)
	removed := 0
	for _, s := range run.PerRank {
		removed += s.Removed
	}
	if removed != g.M()-run.Output.M() {
		t.Fatalf("per-rank removed %d != global %d", removed, g.M()-run.Output.M())
	}
}

func TestSpectralSparsifyKeepsLowDegreeEdges(t *testing.T) {
	g := gen.Star(100)
	// Υ larger than every min-degree (leaves have degree 1): keep all.
	run := Engine{Ranks: 4, Seed: 11}.SpectralSparsify(g, 2)
	if run.Output.M() != g.M() {
		t.Fatalf("kept %d of %d", run.Output.M(), g.M())
	}
}

func TestDegreeHistogramMatchesLocal(t *testing.T) {
	g := gen.BarabasiAlbert(1000, 3, 13)
	dist := Engine{Ranks: 7, Seed: 1}.DegreeHistogram(g)
	local := g.DegreeHistogram()
	if len(dist) != len(local) {
		t.Fatalf("length %d vs %d", len(dist), len(local))
	}
	for d := range local {
		if dist[d] != local[d] {
			t.Fatalf("histogram[%d]: %d vs %d", d, dist[d], local[d])
		}
	}
}

func TestCustomKernel(t *testing.T) {
	g := gen.Cycle(100)
	// Keep only even edge IDs.
	run := Engine{Ranks: 5, Seed: 1}.RunEdgeKernel(g,
		func(rank int, r *rng.Rand, id graph.EdgeID, u, v graph.NodeID) bool {
			return id%2 == 0
		})
	if run.Output.M() != 50 {
		t.Fatalf("kept %d, want 50", run.Output.M())
	}
}

func TestSingleRankEqualsSequential(t *testing.T) {
	g := gen.ErdosRenyi(200, 1000, 17)
	one := Engine{Ranks: 1, Seed: 3}.UniformSample(g, 0.5)
	if one.RanksUsed != 1 {
		t.Fatal("rank override failed")
	}
	if one.Output.M() == 0 || one.Output.M() == g.M() {
		t.Fatalf("degenerate sample: %d", one.Output.M())
	}
}

func BenchmarkDistributedUniformRMAT14(b *testing.B) {
	g := gen.RMAT(14, 8, 0.57, 0.19, 0.19, 1)
	e := Engine{Ranks: 8, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.UniformSample(g, 0.4)
	}
}
