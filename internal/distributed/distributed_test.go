package distributed

import (
	"math"
	"testing"

	"slimgraph/internal/gen"
	"slimgraph/internal/graph"
	"slimgraph/internal/succinct"
)

func TestPartitionCoversDisjointly(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1001} {
		for _, parts := range []int{1, 3, 4, 16} {
			g := gen.ErdosRenyi(n, 4*n, uint64(n+1))
			ranges := PartitionByDegree(g, parts)
			if len(ranges) != parts {
				t.Fatalf("n=%d parts=%d: got %d ranges", n, parts, len(ranges))
			}
			prevHi := int32(0)
			covered := 0
			for i, r := range ranges {
				if r.Lo != prevHi {
					t.Fatalf("n=%d parts=%d rank=%d: gap at %d", n, parts, i, r.Lo)
				}
				covered += r.Len()
				prevHi = r.Hi
			}
			if covered != g.N() || int(prevHi) != g.N() {
				t.Fatalf("n=%d parts=%d: covered %d of %d", n, parts, covered, g.N())
			}
		}
	}
}

func TestPartitionBalancesArcs(t *testing.T) {
	// A BA graph is skewed; a degree-aware split must still balance arcs
	// far better than the worst case of all mass in one range.
	g := gen.BarabasiAlbert(2000, 4, 11)
	const parts = 8
	ranges := PartitionByDegree(g, parts)
	var total int64
	maxPart := int64(0)
	for _, r := range ranges {
		var arcs int64
		for v := r.Lo; v < r.Hi; v++ {
			arcs += int64(g.Degree(v))
		}
		total += arcs
		if arcs > maxPart {
			maxPart = arcs
		}
	}
	if total == 0 {
		t.Fatal("no arcs")
	}
	// Perfect balance is total/parts; allow 2x skew (one heavy vertex can
	// force it), which still rules out degenerate splits.
	if maxPart > 2*total/parts {
		t.Fatalf("heaviest part holds %d of %d arcs across %d parts", maxPart, total, parts)
	}
}

func TestPartitionWorksOnPackedGraph(t *testing.T) {
	// The partitioner consumes Adjacency only: a packed graph must produce
	// the identical split without an Unpack call.
	g := gen.RMAT(10, 8, 0.57, 0.19, 0.19, 3)
	pg := succinct.Pack(g, 1)
	raw := PartitionByDegree(g, 5)
	packed := PartitionByDegree(pg, 5)
	for i := range raw {
		if raw[i] != packed[i] {
			t.Fatalf("range %d: raw %+v packed %+v", i, raw[i], packed[i])
		}
	}
}

func TestOwner(t *testing.T) {
	g := gen.ErdosRenyi(100, 400, 2)
	ranges := PartitionByDegree(g, 7)
	for v := 0; v < g.N(); v++ {
		i := Owner(ranges, graph.NodeID(v))
		if !ranges[i].Contains(graph.NodeID(v)) {
			t.Fatalf("vertex %d assigned to range %d = %+v", v, i, ranges[i])
		}
	}
}

func TestCutArcsBounds(t *testing.T) {
	g := gen.Cycle(100) // every vertex has degree 2
	ranges := PartitionByDegree(g, 4)
	cut := CutArcs(g, ranges)
	// A cycle split into 4 contiguous arcs cuts exactly 4 edges = 8 arcs.
	if cut != 8 {
		t.Fatalf("cycle cut %d arcs, want 8", cut)
	}
	one := PartitionByDegree(g, 1)
	if c := CutArcs(g, one); c != 0 {
		t.Fatalf("single partition cut %d arcs", c)
	}
}

func TestDegreeHistogramMatchesLocal(t *testing.T) {
	g := gen.BarabasiAlbert(1000, 3, 13)
	dist := DegreeHistogram(g, 7)
	local := g.DegreeHistogram()
	if len(dist) != len(local) {
		t.Fatalf("length %d vs %d", len(dist), len(local))
	}
	for d := range local {
		if dist[d] != local[d] {
			t.Fatalf("histogram[%d]: %d vs %d", d, dist[d], local[d])
		}
	}
	// And identically over the packed form.
	packed := DegreeHistogram(succinct.Pack(g, 1), 3)
	for d := range local {
		if packed[d] != local[d] {
			t.Fatalf("packed histogram[%d]: %d vs %d", d, packed[d], local[d])
		}
	}
}

func TestCompressUniformRatio(t *testing.T) {
	g := gen.RMAT(12, 8, 0.57, 0.19, 0.19, 1)
	e := Engine{Ranks: 8, Seed: 42}
	run, err := e.Compress(g, "uniform:p=0.4")
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(run.Output.M()) / float64(g.M())
	if math.Abs(ratio-0.4) > 0.03 {
		t.Fatalf("ratio %v, want ~0.4", ratio)
	}
	if run.RanksUsed != 8 || len(run.PerRank) != 8 {
		t.Fatalf("rank bookkeeping: %+v", run)
	}
	held := int32(0)
	for _, s := range run.PerRank {
		held += s.Vertices.Hi - s.Vertices.Lo
	}
	if int(held) != g.N() {
		t.Fatalf("ranks own %d vertices of %d", held, g.N())
	}
}

func TestCompressIndependentOfRankCount(t *testing.T) {
	// Element-keyed streams make the output a pure function of
	// (graph, spec, seed): rank count must not matter.
	g := gen.ErdosRenyi(500, 3000, 3)
	a, err := Engine{Ranks: 1, Seed: 7}.Compress(g, "uniform:p=0.5")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Engine{Ranks: 16, Seed: 7}.Compress(g, "uniform:p=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if a.Output.M() != b.Output.M() {
		t.Fatalf("rank count changed output: %d vs %d edges", a.Output.M(), b.Output.M())
	}
	c, err := Engine{Ranks: 4, Seed: 8}.Compress(g, "uniform:p=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if a.Output.M() == c.Output.M() {
		t.Log("different seeds produced same edge count (possible, not checked further)")
	}
}

func TestCompressBadSpec(t *testing.T) {
	g := gen.Cycle(10)
	if _, err := (Engine{Ranks: 2, Seed: 1}).Compress(g, "no-such-scheme"); err == nil {
		t.Fatal("want error for unknown scheme")
	}
}

func TestCompressCanonicalSpec(t *testing.T) {
	g := gen.ErdosRenyi(100, 500, 1)
	run, err := Engine{Ranks: 2, Seed: 1}.Compress(g, "uniform: p=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if run.Spec != "uniform:p=0.5" {
		t.Fatalf("canonical spec %q", run.Spec)
	}
	if run.InputM != g.M() {
		t.Fatalf("InputM %d != %d", run.InputM, g.M())
	}
}

func BenchmarkDistributedUniformRMAT14(b *testing.B) {
	g := gen.RMAT(14, 8, 0.57, 0.19, 0.19, 1)
	e := Engine{Ranks: 8, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Compress(g, "uniform:p=0.4"); err != nil {
			b.Fatal(err)
		}
	}
}
