// Package components computes connected components.
//
// The number of connected components is one of the twelve graph properties
// of Table 3: Triangle Reduction and spanners preserve it exactly, spectral
// sparsification w.h.p., and uniform sampling can increase it by up to pm.
// Three interchangeable algorithms are provided (BFS sweep, union-find, and
// parallel label propagation); tests cross-check them.
package components

import (
	"sync/atomic"

	"slimgraph/internal/graph"
	"slimgraph/internal/parallel"
	"slimgraph/internal/unionfind"
)

// Labels assigns every vertex a component label via repeated BFS. Labels
// are the smallest vertex ID in each component, so output is deterministic.
func Labels(g *graph.Graph) []graph.NodeID {
	return LabelsOn(g)
}

// LabelsOn is Labels over any adjacency view — the raw CSR or a packed
// graph traversed in place — with identical output: the sweep only depends
// on neighbor visit order, which Adjacency fixes to increasing ID.
func LabelsOn(a graph.Adjacency) []graph.NodeID {
	n := a.N()
	label := make([]graph.NodeID, n)
	for i := range label {
		label[i] = -1
	}
	queue := make([]graph.NodeID, 0, 1024)
	// One visit closure for the whole sweep, rebinding root per component,
	// so the per-vertex neighbor scan allocates nothing.
	var root graph.NodeID
	visit := func(v graph.NodeID) {
		if label[v] < 0 {
			label[v] = root
			queue = append(queue, v)
		}
	}
	for s := 0; s < n; s++ {
		if label[s] >= 0 {
			continue
		}
		root = graph.NodeID(s)
		label[s] = root
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			a.ForNeighbors(u, visit)
		}
	}
	return label
}

// LabelsUnionFind computes component labels with a union-find pass over the
// canonical edge list.
func LabelsUnionFind(g *graph.Graph) []graph.NodeID {
	uf := unionfind.New(g.N())
	for e := 0; e < g.M(); e++ {
		u, v := g.EdgeEndpoints(graph.EdgeID(e))
		uf.Union(u, v)
	}
	return uf.Labels()
}

// LabelsPropagation computes component labels by parallel min-label
// propagation (Shiloach–Vishkin flavor): every vertex repeatedly adopts the
// minimum label in its closed neighborhood until a fixpoint.
func LabelsPropagation(g *graph.Graph, workers int) []graph.NodeID {
	n := g.N()
	label := make([]int32, n)
	for i := range label {
		label[i] = int32(i)
	}
	for changed := int64(1); changed != 0; {
		changed = 0
		parallel.ForChunks(n, workers, func(lo, hi int) {
			var local int64
			for v := lo; v < hi; v++ {
				min := atomic.LoadInt32(&label[v])
				for _, w := range g.Neighbors(graph.NodeID(v)) {
					if l := atomic.LoadInt32(&label[w]); l < min {
						min = l
					}
				}
				if min < atomic.LoadInt32(&label[v]) {
					atomic.StoreInt32(&label[v], min)
					local++
				}
			}
			if local > 0 {
				atomic.AddInt64(&changed, local)
			}
		})
	}
	// Min-label propagation converges to per-component minima, which makes
	// it directly comparable with Labels.
	out := make([]graph.NodeID, n)
	for i, l := range label {
		out[i] = graph.NodeID(l)
	}
	return out
}

// Count returns the number of connected components. Isolated vertices count
// as components of size 1, matching the paper's convention (removing all
// edges of a vertex adds a component).
func Count(g *graph.Graph) int {
	return CountLabels(Labels(g))
}

// CountOn is Count over any adjacency view.
func CountOn(a graph.Adjacency) int {
	return CountLabels(LabelsOn(a))
}

// CountLabels returns the number of distinct labels.
func CountLabels(labels []graph.NodeID) int {
	seen := make(map[graph.NodeID]struct{}, 64)
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}

// Sizes returns component sizes keyed by label.
func Sizes(labels []graph.NodeID) map[graph.NodeID]int {
	sizes := make(map[graph.NodeID]int)
	for _, l := range labels {
		sizes[l]++
	}
	return sizes
}

// Largest returns the size of the largest component.
func Largest(labels []graph.NodeID) int {
	best := 0
	for _, s := range Sizes(labels) {
		if s > best {
			best = s
		}
	}
	return best
}

// SameComponents reports whether two labelings induce the same partition of
// the vertex set (labels themselves may differ).
func SameComponents(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := make(map[graph.NodeID]graph.NodeID)
	rev := make(map[graph.NodeID]graph.NodeID)
	for i := range a {
		if l, ok := fwd[a[i]]; ok && l != b[i] {
			return false
		}
		if l, ok := rev[b[i]]; ok && l != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		rev[b[i]] = a[i]
	}
	return true
}
