package components

import (
	"testing"
	"testing/quick"

	"slimgraph/internal/gen"
	"slimgraph/internal/graph"
	"slimgraph/internal/rng"
)

func TestCountSimple(t *testing.T) {
	g := graph.FromEdges(7, false, []graph.Edge{
		graph.E(0, 1), graph.E(1, 2), graph.E(3, 4),
	})
	// Components: {0,1,2}, {3,4}, {5}, {6}
	if got := Count(g); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
}

func TestLabelsDeterministicMinID(t *testing.T) {
	g := graph.FromEdges(5, false, []graph.Edge{graph.E(3, 4), graph.E(1, 2)})
	l := Labels(g)
	if l[3] != 3 || l[4] != 3 || l[1] != 1 || l[2] != 1 || l[0] != 0 {
		t.Fatalf("labels %v", l)
	}
}

func TestThreeImplementationsAgreeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 80
		m := r.Intn(150)
		edges := make([]graph.Edge, m)
		for i := range edges {
			edges[i] = graph.E(graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n)))
		}
		g := graph.FromEdges(n, false, edges)
		a := Labels(g)
		b := LabelsUnionFind(g)
		c := LabelsPropagation(g, 4)
		return SameComponents(a, b) && SameComponents(a, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConnectedGraphOneComponent(t *testing.T) {
	for _, g := range []*graph.Graph{
		gen.Path(100), gen.Cycle(64), gen.Complete(10), gen.Grid2D(8, 9, false),
	} {
		if Count(g) != 1 {
			t.Fatalf("%v: Count = %d, want 1", g, Count(g))
		}
	}
}

func TestEdgelessGraph(t *testing.T) {
	g := graph.FromEdges(10, false, nil)
	if Count(g) != 10 {
		t.Fatalf("Count = %d, want 10", Count(g))
	}
}

func TestSizesAndLargest(t *testing.T) {
	g := graph.FromEdges(6, false, []graph.Edge{
		graph.E(0, 1), graph.E(1, 2), graph.E(3, 4),
	})
	l := Labels(g)
	sizes := Sizes(l)
	if sizes[0] != 3 || sizes[3] != 2 || sizes[5] != 1 {
		t.Fatalf("sizes %v", sizes)
	}
	if Largest(l) != 3 {
		t.Fatalf("Largest = %d", Largest(l))
	}
}

func TestSameComponentsDetectsDifference(t *testing.T) {
	a := []graph.NodeID{0, 0, 2}
	b := []graph.NodeID{5, 5, 7}
	if !SameComponents(a, b) {
		t.Fatal("isomorphic labelings reported different")
	}
	c := []graph.NodeID{0, 1, 1}
	if SameComponents(a, c) {
		t.Fatal("different partitions reported same")
	}
	if SameComponents(a, []graph.NodeID{0}) {
		t.Fatal("length mismatch reported same")
	}
}

func BenchmarkLabelsRMAT14(b *testing.B) {
	g := gen.RMAT(14, 8, 0.57, 0.19, 0.19, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Labels(g)
	}
}

func BenchmarkLabelPropagationRMAT14(b *testing.B) {
	g := gen.RMAT(14, 8, 0.57, 0.19, 0.19, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LabelsPropagation(g, 0)
	}
}
