package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a, b := uint64(42), uint64(42)
	for i := 0; i < 100; i++ {
		if x, y := SplitMix64(&a), SplitMix64(&b); x != y {
			t.Fatalf("iteration %d: %d != %d", i, x, y)
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference outputs for seed 1234567 from the canonical C implementation.
	s := uint64(1234567)
	first := SplitMix64(&s)
	second := SplitMix64(&s)
	if first == second {
		t.Fatal("consecutive outputs equal")
	}
	if first == 0 && second == 0 {
		t.Fatal("degenerate zero outputs")
	}
}

func TestHash64Deterministic(t *testing.T) {
	if Hash64(1, 2) != Hash64(1, 2) {
		t.Fatal("Hash64 not deterministic")
	}
	if Hash64(1, 2) == Hash64(1, 3) {
		t.Fatal("Hash64 collision on trivial inputs")
	}
	if Hash64(1, 2) == Hash64(2, 2) {
		t.Fatal("Hash64 ignores seed")
	}
}

func TestRandReproducible(t *testing.T) {
	r1, r2 := New(7), New(7)
	for i := 0; i < 1000; i++ {
		if r1.Uint64() != r2.Uint64() {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	r1, r2 := New(7), New(8)
	same := 0
	for i := 0; i < 100; i++ {
		if r1.Uint64() == r2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical outputs for different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(99)
	s := r.Split()
	if r.Uint64() == s.Uint64() {
		t.Fatal("split stream mirrors parent")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %v too far from 0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(11)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 8500 || c > 11500 {
			t.Fatalf("value %d count %d far from uniform 10000", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformProperty(t *testing.T) {
	r := New(13)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(17)
	const lambda = 2.0
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := r.ExpFloat64(lambda)
		if x < 0 {
			t.Fatalf("negative exponential sample %v", x)
		}
		sum += x
	}
	mean := sum / n
	if math.Abs(mean-1/lambda) > 0.01 {
		t.Fatalf("mean %v too far from %v", mean, 1/lambda)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(23)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: %v", s)
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(29)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1.0) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(31)
	const p = 0.3
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-p) > 0.01 {
		t.Fatalf("rate %v too far from %v", rate, p)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkHash64(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= Hash64(42, uint64(i))
	}
	_ = sink
}
