// Package rng provides fast, deterministic, splittable pseudo-random number
// generators used throughout Slim Graph.
//
// Compression kernels execute in parallel, and every kernel instance needs an
// independent random stream so that results are reproducible for a fixed
// (seed, worker count) pair. The package implements SplitMix64 (for seeding
// and cheap stateless hashing) and xoshiro256** (the workhorse generator),
// both from the public-domain reference implementations by Blackman and
// Vigna.
package rng

import "math"

// SplitMix64 advances the given state and returns the next 64-bit output.
// It is used to derive independent seeds for per-worker streams and as a
// stateless hash of (seed, index) pairs.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash64 deterministically mixes two 64-bit values into one. It gives every
// graph element (edge ID, vertex ID, ...) its own high-quality random word
// without any shared state, which is what makes parallel kernels both
// race-free and schedule-independent when element-keyed randomness is used.
func Hash64(seed, x uint64) uint64 {
	s := seed ^ (x+0x9e3779b97f4a7c15)*0xff51afd7ed558ccd
	return SplitMix64(&s)
}

// Rand is a xoshiro256** generator. The zero value is not usable; construct
// with New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed via SplitMix64, as
// recommended by the xoshiro authors.
func New(seed uint64) *Rand {
	var r Rand
	st := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&st)
	}
	return &r
}

// Split returns a new generator whose stream is independent of r's with
// overwhelming probability. It is used to hand one stream to each parallel
// worker.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Rejection sampling on the low word keeps the result exactly uniform.
	for {
		v := r.Uint64()
		if v < -n%n { // v below 2^64 mod n would bias the result
			continue
		}
		return v % n
	}
}

// ExpFloat64 returns an exponentially distributed float64 with rate lambda
// (mean 1/lambda), via inverse transform sampling. Low-diameter
// decomposition uses these as the per-vertex start-time shifts.
func (r *Rand) ExpFloat64(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: ExpFloat64 called with lambda <= 0")
	}
	u := r.Float64()
	// 1-u is in (0, 1], so the logarithm is finite.
	return -math.Log(1-u) / lambda
}

// Perm returns a uniformly random permutation of [0, n) (Fisher–Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the given swap
// function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bernoulli reports true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	return r.Float64() < p
}
