// Social-network analytics on a compressed graph: Triangle Reduction
// variants on a community-structured graph, checking which analytics
// survive — connected components, matchings, coloring, betweenness
// ordering. This is the workload class (friendship graphs, §7.1-7.2) that
// motivates TR in the paper.
package main

import (
	"fmt"

	"slimgraph"
)

func main() {
	// A graph with planted communities: dense 25-vertex groups plus random
	// inter-community friendships (very high triangles-per-vertex, like
	// the paper's s-cds).
	g := slimgraph.GenerateCommunities(8000, 25, 0.5, 12000, 7)
	fmt.Println("social graph:", g)
	fmt.Printf("  triangles/vertex: %.1f\n", float64(3*slimgraph.TriangleCount(g, 0))/float64(g.N()))

	origCC := slimgraph.ComponentCount(g)
	origMatch := slimgraph.MatchingSize(g)
	origColor := slimgraph.ColoringNumber(g)
	sources := make([]slimgraph.NodeID, 64)
	for i := range sources {
		sources[i] = slimgraph.NodeID(i * (g.N() / 64))
	}
	origBC := slimgraph.BetweennessSampled(g, sources, 0)

	fmt.Printf("\n%-12s %8s %6s %9s %8s %12s\n",
		"variant", "ratio", "CC", "matching", "colors", "BC reorder")
	fmt.Printf("%-12s %8s %6d %9d %8d %12s\n", "original", "1.000",
		origCC, origMatch, origColor, "-")
	for _, variant := range []struct {
		name string
		v    slimgraph.TROptions
	}{
		{"basic", slimgraph.TROptions{P: 0.5, Variant: slimgraph.TRBasic, Seed: 3}},
		{"EO", slimgraph.TROptions{P: 0.5, Variant: slimgraph.TREO, Seed: 3}},
		{"CT", slimgraph.TROptions{P: 0.5, Variant: slimgraph.TRCT, Seed: 3}},
	} {
		res := slimgraph.TriangleReduction(g, variant.v)
		compBC := slimgraph.BetweennessSampled(res.Output, sources, 0)
		fmt.Printf("%-12s %8.3f %6d %9d %8d %12.4f\n",
			variant.name, res.CompressionRatio(),
			slimgraph.ComponentCount(res.Output),
			slimgraph.MatchingSize(res.Output),
			slimgraph.ColoringNumber(res.Output),
			slimgraph.ReorderedNeighborPairs(g, origBC, compBC))
	}

	// Triangle collapse shrinks the vertex set itself.
	col := slimgraph.TriangleReduction(g, slimgraph.TROptions{
		P: 0.3, Variant: slimgraph.TRCollapse, Seed: 3})
	fmt.Printf("\ncollapse(p=0.3): n %d -> %d, m %d -> %d\n",
		g.N(), col.Output.N(), g.M(), col.Output.M())

	fmt.Println("\nTable 3's promises hold: EO keeps every component intact and the")
	fmt.Println("matching within 2/3; the coloring number shrinks by at most ~1/3.")
}
