// Distributed compression of a graph too large for one "node": simulated
// MPI-RMA-style rank-partitioned uniform sampling (§7.3, Figure 8), with
// per-rank statistics and the degree-distribution check that the power-law
// shape survives.
package main

import (
	"fmt"

	"slimgraph"
)

func main() {
	// The largest graph this example bothers to hold in memory: ~64k
	// vertices, ~1M edges (scale it up with graphgen for real runs).
	g := slimgraph.GenerateRMAT(16, 16, 99)
	fmt.Println("input:", g)
	slope, r2 := slimgraph.PowerLawSlope(slimgraph.DegreeDistribution(g))
	fmt.Printf("  degree power law: slope %.2f (R^2 %.2f)\n\n", slope, r2)

	for _, ranks := range []int{4, 16} {
		engine := slimgraph.DistributedEngine{Ranks: ranks, Seed: 7}
		run := engine.UniformSample(g, 0.6) // keep 60%
		fmt.Println(run)
		for _, s := range run.PerRank {
			fmt.Printf("  rank %2d: held %7d edges, removed %7d, %v\n",
				s.Rank, s.EdgesHeld, s.Removed, s.Elapsed)
		}
		s, r := slimgraph.PowerLawSlope(slimgraph.DegreeDistribution(run.Output))
		fmt.Printf("  compressed power law: slope %.2f (R^2 %.2f)\n\n", s, r)
	}
	fmt.Println("Per-rank removals are deterministic for a fixed (seed, ranks)")
	fmt.Println("pair, mirroring the reproducible distributed runs of the paper.")
}
