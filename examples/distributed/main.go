// Distributed compression of a graph too large for one "node": simulated
// MPI-RMA-style rank-partitioned uniform sampling (§7.3, Figure 8), with
// per-rank partition statistics and the degree-distribution check that the
// power-law shape survives.
package main

import (
	"fmt"
	"log"

	"slimgraph"
)

func main() {
	// The largest graph this example bothers to hold in memory: ~64k
	// vertices, ~1M edges (scale it up with graphgen for real runs).
	g := slimgraph.GenerateRMAT(16, 16, 99)
	fmt.Println("input:", g)
	slope, r2 := slimgraph.PowerLawSlope(slimgraph.DegreeDistribution(g))
	fmt.Printf("  degree power law: slope %.2f (R^2 %.2f)\n\n", slope, r2)

	for _, ranks := range []int{4, 16} {
		engine := slimgraph.DistributedEngine{Ranks: ranks, Seed: 7}
		run, err := engine.Compress(g, "uniform:p=0.6") // keep 60%
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(run)
		for _, s := range run.PerRank {
			fmt.Printf("  rank %2d: owns vertices [%7d, %7d), %8d arcs, %8d cut\n",
				s.Rank, s.Vertices.Lo, s.Vertices.Hi, s.Arcs, s.CutArcs)
		}
		s, r := slimgraph.PowerLawSlope(slimgraph.DegreeDistribution(run.Output))
		fmt.Printf("  compressed power law: slope %.2f (R^2 %.2f)\n\n", s, r)
	}
	fmt.Println("The compressed graph is identical for any rank count: every")
	fmt.Println("random decision is keyed by the global edge ID, so adding ranks")
	fmt.Println("repartitions the work but never the outcome — the reproducible")
	fmt.Println("distributed runs of the paper.")
}
