// Web-graph storage and analytics: spectral sparsification and lossy
// ε-summarization of a power-law hyperlink-style graph, with the
// degree-distribution analysis of Figures 7/8 ("spanners strengthen the
// power law") and on-disk storage accounting.
package main

import (
	"fmt"

	"slimgraph"
)

func main() {
	g := slimgraph.GenerateBarabasiAlbert(50000, 10, 23)
	fmt.Println("web graph:", g)
	origBytes := slimgraph.BinarySize(g)
	slope, r2 := slimgraph.PowerLawSlope(slimgraph.DegreeDistribution(g))
	fmt.Printf("  snapshot: %d KiB, degree power law: slope %.2f (R^2 %.2f)\n\n",
		origBytes/1024, slope, r2)

	// Spectral sparsification preserves the spectrum (and PageRank) while
	// thinning dense neighborhoods. Reweight=false keeps the snapshot
	// unweighted (8 bytes/edge); pass Reweight=true when downstream
	// algorithms need the unbiased Laplacian instead of minimal storage.
	origPR := slimgraph.PageRank(g, 0)
	spec := slimgraph.SpectralSparsify(g, slimgraph.SpectralOptions{
		P: 1, Variant: slimgraph.UpsilonLogN, Seed: 9})
	fmt.Println(spec)
	fmt.Printf("  KL(PageRank): %.4f, snapshot now %d KiB\n",
		slimgraph.KLDivergence(origPR, slimgraph.PageRank(spec.Output, 0)),
		slimgraph.BinarySize(spec.Output)/1024)

	// Spanners at growing k: degree distributions straighten out.
	fmt.Printf("\n%-14s %10s %8s %8s\n", "compression", "edges", "slope", "R^2")
	fmt.Printf("%-14s %10d %8.2f %8.2f\n", "none", g.M(), slope, r2)
	for _, k := range []int{2, 32} {
		res := slimgraph.Spanner(g, slimgraph.SpannerOptions{K: k, Seed: 9})
		s, r := slimgraph.PowerLawSlope(slimgraph.DegreeDistribution(res.Output))
		fmt.Printf("spanner k=%-4d %10d %8.2f %8.2f\n", k, res.Output.M(), s, r)
	}

	// Lossy summarization pays off when pages share neighborhoods (link
	// templates, mirrored sections) — preferential attachment alone has
	// none, so summarize a template-heavy site-cluster analog instead.
	sites := slimgraph.GenerateCommunities(20000, 25, 0.8, 20000, 27)
	sum := slimgraph.Summarize(sites, slimgraph.SummarizeOptions{
		Iterations: 8, Epsilon: 0.1, Seed: 9})
	fmt.Printf("\nsite clusters: %v\n%s\n", sites, sum)
	dec := sum.Decode()
	fmt.Printf("  decoded m: %d (original %d; ε bounds the drift by 2εm = %.0f)\n",
		dec.M(), sites.M(), 0.2*float64(sites.M()))
}
