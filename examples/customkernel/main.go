// Writing a custom compression kernel: the Slim Graph programming model is
// not limited to the built-in schemes. This example implements a
// "weak-ties" kernel — remove edges whose endpoints share no other common
// neighbor (edges in no triangle), keeping community cores intact — in a
// dozen lines, plus a vertex kernel stacked on top.
package main

import (
	"fmt"

	"slimgraph"
)

func main() {
	g := slimgraph.GenerateCommunities(10000, 20, 0.5, 30000, 31)
	fmt.Println("input:", g)
	origCC := slimgraph.ComponentCount(g)

	// Pass 1 (triangle kernel): mark every edge that closes a triangle.
	sg := slimgraph.NewSG(g, 1, 0)
	sg.RunTriangleKernel(func(sg *slimgraph.SG, r *slimgraph.Rand, t slimgraph.TriangleView) {
		for _, e := range t.E {
			sg.MarkConsidered(e) // reuse the Edge-Once flags as "in a triangle"
		}
	})
	// Pass 2 (edge kernel): drop weak ties — edges in no triangle — with
	// probability 0.7.
	sg.RunEdgeKernel(func(sg *slimgraph.SG, r *slimgraph.Rand, e slimgraph.EdgeView) {
		if !sg.WasConsidered(e.ID) && r.Float64() < 0.7 {
			sg.Del(e.ID)
		}
	})
	// Pass 3 (vertex kernel): fully prune vertices the weak-tie removal
	// isolated.
	weak := sg.Materialize()
	sg2 := slimgraph.NewSG(weak, 1, 0)
	sg2.RunVertexKernel(func(sg *slimgraph.SG, r *slimgraph.Rand, v slimgraph.VertexView) {
		if v.Deg == 0 {
			sg.DelVertex(v.ID)
		}
	})
	out := sg2.Materialize()

	fmt.Printf("weak-ties kernel: m %d -> %d (%.1f%% reduction)\n",
		g.M(), out.M(), 100*(1-float64(out.M())/float64(g.M())))
	fmt.Printf("components: %d -> %d (weak ties were the bridges)\n",
		origCC, slimgraph.ComponentCount(out))
	fmt.Printf("triangles:  %d -> %d (community cores untouched)\n",
		slimgraph.TriangleCount(g, 0), slimgraph.TriangleCount(out, 0))
	fmt.Println("\nThree kernels, one scheme: the same local-view model the")
	fmt.Println("paper's built-in schemes use is available for custom designs.")
}
