// Road-network processing: spanners vs shortest paths and MST-preserving
// Triangle Reduction on a weighted grid — the paper's weighted-graph
// story (§7.1): road networks barely compress under TR (almost no
// triangles), spanners bound every distance, and the max-weight TR variant
// keeps the MST weight exactly.
package main

import (
	"fmt"
	"math"

	"slimgraph"
)

func main() {
	// A 200x200 grid with diagonal shortcuts and uniform travel costs:
	// 40k intersections, road-like sparsity.
	base := slimgraph.GenerateGrid(200, 200, true)
	g := slimgraph.WithUniformWeights(base, 1, 10, 11)
	fmt.Println("road network:", g)

	origDist, _ := slimgraph.Dijkstra(g, 0)
	origMST := slimgraph.MSTWeight(g)
	fmt.Printf("  MST weight: %.1f, diameter (hops): %d\n\n", origMST, slimgraph.Diameter(g, 0))

	// Spanners: distance stretch vs compression.
	fmt.Printf("%-14s %8s %14s %14s\n", "scheme", "ratio", "mean stretch", "max stretch")
	for _, k := range []int{2, 4, 8} {
		res := slimgraph.Spanner(g, slimgraph.SpannerOptions{K: k, Seed: 5})
		dist, _ := slimgraph.Dijkstra(res.Output, 0)
		mean, max := stretch(origDist, dist)
		fmt.Printf("spanner k=%-3d %9.3f %14.3f %14.3f\n", k, res.CompressionRatio(), mean, max)
	}

	// Max-weight TR: exact MST preservation, tiny compression on roads.
	tr := slimgraph.TriangleReduction(g, slimgraph.TROptions{
		P: 1, Variant: slimgraph.TRMaxWeight, Seed: 5, Workers: 1})
	fmt.Printf("\nmax-weight TR: ratio %.3f (roads have few triangles)\n", tr.CompressionRatio())
	fmt.Printf("  MST weight: %.1f -> %.1f (preserved exactly: %v)\n",
		origMST, slimgraph.MSTWeight(tr.Output),
		math.Abs(origMST-slimgraph.MSTWeight(tr.Output)) < 1e-9)

	// SSSP on the compressed road network still works end to end.
	ds := slimgraph.DeltaStepping(tr.Output, 0, 0, 0)
	reachable := 0
	for _, d := range ds {
		if !math.IsInf(d, 1) {
			reachable++
		}
	}
	fmt.Printf("  SSSP on compressed graph reaches %d/%d intersections\n", reachable, g.N())
}

// stretch compares per-vertex distances, returning mean and max ratio over
// vertices reachable in both graphs.
func stretch(orig, comp []float64) (mean, max float64) {
	count := 0
	for v := range orig {
		if math.IsInf(orig[v], 1) || math.IsInf(comp[v], 1) || orig[v] == 0 {
			continue
		}
		r := comp[v] / orig[v]
		mean += r
		if r > max {
			max = r
		}
		count++
	}
	if count > 0 {
		mean /= float64(count)
	}
	return mean, max
}
