// Serving: run the slimgraphd compress-and-query service in-process and
// drive it the way a client would — load a graph, compress it through the
// single-flight variant cache, query the variant, and read the cache
// counters. The same handler runs standalone via cmd/slimgraphd.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"

	"slimgraph"
)

func main() {
	// An in-process server; cmd/slimgraphd serves the identical handler on
	// a real listener.
	srv, err := slimgraph.NewServer(slimgraph.ServerOptions{CacheCapacity: 16})
	if err != nil {
		log.Fatal(err)
	}

	// Graphs can be preloaded programmatically (here: packed residency, so
	// BFS/PageRank on the original traverse the succinct form in place)...
	if err := srv.AddGraph("social", slimgraph.MemoryPacked, "example",
		slimgraph.GenerateCommunities(2000, 25, 0.5, 2000, 7), 0); err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// ...or created over HTTP, like every other operation.
	post(ts.URL+"/v1/graphs", `{"name":"web","gen":"rmat","scale":11,"edgeFactor":8,"seed":1}`)

	// Compress: the first request executes Edge-Once Triangle Reduction;
	// identical concurrent requests would coalesce onto that one run.
	fmt.Println("== compress tr-eo:p=0.8 ==")
	fmt.Print(post(ts.URL+"/v1/graphs/social/compress", `{"spec":"tr-eo:p=0.8","seed":3}`))

	// Query the cached variant and compare it against the original.
	fmt.Println("== PageRank top-3 on the variant ==")
	fmt.Print(get(ts.URL + "/v1/graphs/social/pagerank?k=3&spec=tr-eo:p=0.8&seed=3"))
	fmt.Println("== quality vs original ==")
	fmt.Print(get(ts.URL + "/v1/graphs/social/compare?spec=tr-eo:p=0.8&seed=3"))

	// Both queries hit the variant computed by the compress call.
	fmt.Println("== cache counters ==")
	fmt.Printf("%+v\n", srv.CacheStats())
}

func post(url, body string) string {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	return slurp(resp)
}

func get(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	return slurp(resp)
}

func slurp(resp *http.Response) string {
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	var pretty bytes.Buffer
	if json.Indent(&pretty, b, "", "  ") == nil {
		return pretty.String() + "\n"
	}
	return string(b)
}
