// Quickstart: compress a social-network-style graph three ways and measure
// what each scheme did to PageRank, connectivity, and triangles — the
// minimal end-to-end tour of the Slim Graph pipeline (compress -> run
// algorithms -> evaluate accuracy).
package main

import (
	"fmt"

	"slimgraph"
)

func main() {
	// Stage 0: an R-MAT graph standing in for a small social network.
	g := slimgraph.GenerateRMAT(13, 8, 42)
	fmt.Println("input:", g)
	origPR := slimgraph.PageRank(g, 0)
	origCC := slimgraph.ComponentCount(g)
	origT := slimgraph.TriangleCount(g, 0)
	fmt.Printf("  components=%d triangles=%d\n\n", origCC, origT)

	// Stage 1: three compression kernels with very different contracts.
	results := []*slimgraph.Result{
		slimgraph.Uniform(g, 0.5, 1, 0), // keep half the edges
		slimgraph.TriangleReduction(g, slimgraph.TROptions{
			P: 0.8, Variant: slimgraph.TREO, Seed: 1}),
		slimgraph.Spanner(g, slimgraph.SpannerOptions{K: 8, Seed: 1}),
	}

	// Stage 2: run the algorithms on each compressed graph and compare.
	fmt.Printf("%-28s %8s %10s %6s %12s\n", "scheme", "ratio", "KL(PR)", "CC", "triangles")
	for _, res := range results {
		compPR := slimgraph.PageRank(res.Output, 0)
		fmt.Printf("%-28s %8.3f %10.4f %6d %12d\n",
			res.Scheme+"("+res.Params+")",
			res.CompressionRatio(),
			slimgraph.KLDivergence(origPR, compPR),
			slimgraph.ComponentCount(res.Output),
			slimgraph.TriangleCount(res.Output, 0))
	}
	fmt.Println("\nNote how Edge-Once Triangle Reduction preserves the component")
	fmt.Println("count exactly, uniform sampling preserves triangle counts in")
	fmt.Println("expectation, and the spanner trades triangles for distance bounds.")
}
