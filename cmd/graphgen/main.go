// Command graphgen writes synthetic graphs (the dataset analogs of
// DESIGN.md §3) to edge-list or binary files.
//
// Usage:
//
//	graphgen -type rmat -scale 16 -ef 8 -out web.el
//	graphgen -type grid -n 1000000 -weighted -format bin -out road.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"slimgraph"
)

func main() {
	var (
		kind     = flag.String("type", "rmat", "rmat | er | ba | grid | communities | smallworld")
		scale    = flag.Int("scale", 14, "R-MAT scale")
		ef       = flag.Int("ef", 8, "edge factor / attachment degree")
		n        = flag.Int("n", 100000, "vertex count (non-R-MAT)")
		seed     = flag.Uint64("seed", 1, "seed")
		weighted = flag.Bool("weighted", false, "uniform [1,100) edge weights")
		format   = flag.String("format", "el", "el (text) | bin (binary snapshot)")
		out      = flag.String("out", "", "output file (default stdout for el)")
	)
	flag.Parse()

	var g *slimgraph.Graph
	switch *kind {
	case "rmat":
		g = slimgraph.GenerateRMAT(*scale, *ef, *seed)
	case "er":
		g = slimgraph.GenerateErdosRenyi(*n, *n**ef, *seed)
	case "ba":
		g = slimgraph.GenerateBarabasiAlbert(*n, *ef, *seed)
	case "grid":
		side := 1
		for side*side < *n {
			side++
		}
		g = slimgraph.GenerateGrid(side, side, false)
	case "communities":
		g = slimgraph.GenerateCommunities(*n, 25, 0.5, *n, *seed)
	case "smallworld":
		g = slimgraph.GenerateSmallWorld(*n, *ef, 0.1, *seed)
	default:
		fmt.Fprintf(os.Stderr, "graphgen: unknown type %q\n", *kind)
		os.Exit(1)
	}
	if *weighted {
		g = slimgraph.WithUniformWeights(g, 1, 100, *seed+1)
	}
	fmt.Fprintln(os.Stderr, "generated:", g)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	var err error
	switch *format {
	case "el":
		err = slimgraph.WriteEdgeList(w, g)
	case "bin":
		_, err = slimgraph.WriteBinary(w, g)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}
