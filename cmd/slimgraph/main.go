// Command slimgraph compresses a graph with any registered lossy scheme —
// or a pipeline of them — runs stage-2 algorithms on the original and the
// compressed graph, and reports the accuracy metrics of the Slim Graph
// analytics subsystem.
//
// Usage examples:
//
//	slimgraph -gen rmat -scale 14 -ef 8 -scheme uniform -p 0.5
//	slimgraph -input graph.el -scheme spanner -k 8 -out compressed.el
//	slimgraph -gen communities -n 20000 -scheme "tr-eo:p=0.8" -metrics
//	slimgraph -scheme "tr-eo:p=0.8|spanner:k=8"   # two-stage pipeline
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"slimgraph"
)

const specGrammar = `Scheme specs (the -scheme argument) follow the registry grammar:

  spec   := stage ("|" stage)*          stages chain into a pipeline
  stage  := name [":" params]
  params := key "=" value ("," key "=" value)*

Examples: "uniform:p=0.5", "spectral:p=1,variant=avgdeg,reweight=true",
"tr-eo:p=0.8|spanner:k=8" (compress with Edge-Once TR, then spanner).
Parameters are native to each scheme (p is the keep probability for
uniform/vertexsample, the triangle sampling probability for the TR family,
the Υ scale for spectral). The -p/-k/-eps flags are shorthand appended to a
bare scheme name; they are ignored when the spec already carries parameters
or a pipeline.

Registered schemes:
`

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), "usage: slimgraph [flags]\n\nFlags:\n")
	flag.PrintDefaults()
	fmt.Fprint(flag.CommandLine.Output(), "\n"+specGrammar)
	for _, name := range slimgraph.SchemeNames() {
		info, _ := slimgraph.LookupScheme(name)
		fmt.Fprintf(flag.CommandLine.Output(), "  %-16s %s\n", name, info.About)
	}
}

func main() {
	var (
		input   = flag.String("input", "", "input edge-list file (.el/.wel); empty = use -gen")
		genKind = flag.String("gen", "rmat", "generator: rmat | er | ba | grid | communities | smallworld")
		scale   = flag.Int("scale", 12, "R-MAT scale (n = 2^scale)")
		ef      = flag.Int("ef", 8, "R-MAT edge factor")
		n       = flag.Int("n", 10000, "vertex count for non-R-MAT generators")
		seed    = flag.Uint64("seed", 1, "random seed (drives generation and compression)")
		scheme  = flag.String("scheme", "uniform",
			"scheme spec, e.g. uniform:p=0.5 or a pipeline tr-eo:p=0.8|spanner:k=8 (see usage)")
		workers  = flag.Int("workers", 0, "parallelism (0 = all CPUs)")
		weighted = flag.Bool("weighted", false, "attach uniform [1,100) weights to generated graphs")
		out      = flag.String("out", "", "write the compressed graph to this file (see -format)")
		format   = flag.String("format", "edgelist", "output format for -out: edgelist | binary | packed")
		metrics  = flag.Bool("metrics", true, "run stage-2 algorithms and print accuracy metrics")
	)
	// Shorthand flags, read back through flag.Visit in buildSpec.
	flag.Float64("p", 0.5, "shorthand for the p= spec parameter")
	flag.Int("k", 8, "shorthand for the k= spec parameter (spanner stretch)")
	flag.Float64("eps", 0.1, "shorthand for the eps= spec parameter (summarization)")
	flag.Usage = usage
	flag.Parse()

	// Reject a bad -format before the run: by write time the compression
	// has already cost minutes and os.Create would truncate the target.
	switch *format {
	case "edgelist", "binary", "packed":
	default:
		fmt.Fprintf(os.Stderr, "slimgraph: unknown -format %q (want edgelist, binary, or packed)\n", *format)
		os.Exit(1)
	}

	g, err := load(*input, *genKind, *scale, *ef, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slimgraph:", err)
		os.Exit(1)
	}
	if *weighted {
		g = slimgraph.WithUniformWeights(g, 1, 100, *seed+1)
	}
	fmt.Println("input:", g)

	s, err := slimgraph.ParseScheme(buildSpec(*scheme),
		slimgraph.WithSeed(*seed), slimgraph.WithWorkers(*workers))
	if err != nil {
		fmt.Fprintln(os.Stderr, "slimgraph:", err)
		os.Exit(1)
	}
	res, err := s.Apply(g)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slimgraph:", err)
		os.Exit(1)
	}
	for _, stage := range res.Stages {
		fmt.Println("  stage", stage)
	}
	if aux, ok := res.Aux.(fmt.Stringer); ok {
		fmt.Println(aux)
	}
	fmt.Println(res)
	fmt.Println(res.ComputeStorage())

	if *metrics && res.VertexMap == nil {
		printMetrics(g, res.Output, *workers)
	}
	if *out != "" {
		written, err := writeOutput(*out, *format, res.Output)
		if err != nil {
			fmt.Fprintln(os.Stderr, "slimgraph:", err)
			os.Exit(1)
		}
		in := slimgraph.BinarySize(g)
		fmt.Printf("wrote %s (%s, %d bytes; input binary %d bytes, %.1fx smaller)\n",
			*out, *format, written, in, float64(in)/float64(written))
	}
}

// writeOutput writes g to path in the selected format and returns the byte
// count. Edge lists report the file size after the fact; the binary formats
// count as they write.
func writeOutput(path, format string, g *slimgraph.Graph) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	switch format {
	case "edgelist":
		if err := slimgraph.WriteEdgeList(f, g); err != nil {
			return 0, err
		}
		info, err := f.Stat()
		if err != nil {
			return 0, err
		}
		return info.Size(), nil
	case "binary":
		return slimgraph.WriteBinary(f, g)
	case "packed":
		return slimgraph.WritePacked(f, g)
	default:
		return 0, fmt.Errorf("unknown -format %q (want edgelist, binary, or packed)", format)
	}
}

// buildSpec merges the -p/-k/-eps shorthand flags into a bare scheme name.
// Flags join the spec only when the user set them explicitly and the spec
// carries no parameters or pipeline of its own — an explicit spec is always
// authoritative.
func buildSpec(spec string) string {
	if strings.ContainsAny(spec, ":|") {
		return spec
	}
	var params []string
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "p", "k", "eps":
			params = append(params, f.Name+"="+f.Value.String())
		}
	})
	if len(params) == 0 {
		return spec
	}
	return spec + ":" + strings.Join(params, ",")
}

func load(input, genKind string, scale, ef, n int, seed uint64) (*slimgraph.Graph, error) {
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		// Binary snapshots (v1 or v2) are recognized by their magic; any
		// other content parses as a text edge list.
		br := bufio.NewReader(f)
		if prefix, err := br.Peek(4); err == nil && slimgraph.IsSnapshot(prefix) {
			return slimgraph.ReadSnapshot(br)
		}
		return slimgraph.ReadEdgeList(br, false)
	}
	switch genKind {
	case "rmat":
		return slimgraph.GenerateRMAT(scale, ef, seed), nil
	case "er":
		return slimgraph.GenerateErdosRenyi(n, n*ef, seed), nil
	case "ba":
		return slimgraph.GenerateBarabasiAlbert(n, ef, seed), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return slimgraph.GenerateGrid(side, side, false), nil
	case "communities":
		return slimgraph.GenerateCommunities(n, 25, 0.5, n, seed), nil
	case "smallworld":
		return slimgraph.GenerateSmallWorld(n, ef, 0.1, seed), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", genKind)
	}
}

func printMetrics(orig, comp *slimgraph.Graph, workers int) {
	fmt.Println("-- accuracy metrics --")
	prO := slimgraph.PageRank(orig, workers)
	prC := slimgraph.PageRank(comp, workers)
	fmt.Printf("KL(PageRank orig || compressed): %.4f bits\n", slimgraph.KLDivergence(prO, prC))
	fmt.Printf("reordered PageRank pairs:        %.4f (of n^2)\n", slimgraph.ReorderedPairs(prO, prC))
	fmt.Printf("connected components:            %d -> %d\n",
		slimgraph.ComponentCount(orig), slimgraph.ComponentCount(comp))
	fmt.Printf("triangles:                       %d -> %d\n",
		slimgraph.TriangleCount(orig, workers), slimgraph.TriangleCount(comp, workers))
	roots := []slimgraph.NodeID{0, slimgraph.NodeID(orig.N() / 2)}
	fmt.Printf("BFS critical-edge retention:     %.2f\n",
		slimgraph.BFSCriticalRetention(orig, comp, roots, workers))
	if orig.Weighted() {
		fmt.Printf("MST weight:                      %.1f -> %.1f\n",
			slimgraph.MSTWeight(orig), slimgraph.MSTWeight(comp))
	}
}
