// Command slimgraph compresses a graph with a chosen lossy scheme, runs
// stage-2 algorithms on the original and the compressed graph, and reports
// the accuracy metrics of the Slim Graph analytics subsystem.
//
// Usage examples:
//
//	slimgraph -gen rmat -scale 14 -ef 8 -scheme uniform -p 0.5
//	slimgraph -input graph.el -scheme spanner -k 8 -out compressed.el
//	slimgraph -gen communities -n 20000 -scheme tr-eo -p 0.8 -metrics
package main

import (
	"flag"
	"fmt"
	"os"

	"slimgraph"
)

func main() {
	var (
		input   = flag.String("input", "", "input edge-list file (.el/.wel); empty = use -gen")
		genKind = flag.String("gen", "rmat", "generator: rmat | er | ba | grid | communities | smallworld")
		scale   = flag.Int("scale", 12, "R-MAT scale (n = 2^scale)")
		ef      = flag.Int("ef", 8, "R-MAT edge factor")
		n       = flag.Int("n", 10000, "vertex count for non-R-MAT generators")
		seed    = flag.Uint64("seed", 1, "random seed (drives generation and compression)")
		scheme  = flag.String("scheme", "uniform",
			"scheme: uniform | spectral | tr | tr-eo | tr-ct | tr-maxweight | tr-collapse | lowdeg | spanner | summarize | cut | vertexsample")
		p        = flag.Float64("p", 0.5, "scheme probability parameter")
		k        = flag.Int("k", 8, "spanner stretch parameter")
		eps      = flag.Float64("eps", 0.1, "summarization error budget")
		workers  = flag.Int("workers", 0, "parallelism (0 = all CPUs)")
		weighted = flag.Bool("weighted", false, "attach uniform [1,100) weights to generated graphs")
		out      = flag.String("out", "", "write the compressed graph to this edge-list file")
		metrics  = flag.Bool("metrics", true, "run stage-2 algorithms and print accuracy metrics")
	)
	flag.Parse()

	g, err := load(*input, *genKind, *scale, *ef, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slimgraph:", err)
		os.Exit(1)
	}
	if *weighted {
		g = slimgraph.WithUniformWeights(g, 1, 100, *seed+1)
	}
	fmt.Println("input:", g)

	res, err := compress(g, *scheme, *p, *k, *eps, *seed, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slimgraph:", err)
		os.Exit(1)
	}
	fmt.Println(res)
	fmt.Printf("storage: %d -> %d bytes (binary snapshot)\n",
		slimgraph.BinarySize(g), slimgraph.BinarySize(res.Output))

	if *metrics && res.VertexMap == nil {
		printMetrics(g, res.Output, *workers)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "slimgraph:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := slimgraph.WriteEdgeList(f, res.Output); err != nil {
			fmt.Fprintln(os.Stderr, "slimgraph:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}
}

func load(input, genKind string, scale, ef, n int, seed uint64) (*slimgraph.Graph, error) {
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return slimgraph.ReadEdgeList(f, false)
	}
	switch genKind {
	case "rmat":
		return slimgraph.GenerateRMAT(scale, ef, seed), nil
	case "er":
		return slimgraph.GenerateErdosRenyi(n, n*ef, seed), nil
	case "ba":
		return slimgraph.GenerateBarabasiAlbert(n, ef, seed), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return slimgraph.GenerateGrid(side, side, false), nil
	case "communities":
		return slimgraph.GenerateCommunities(n, 25, 0.5, n, seed), nil
	case "smallworld":
		return slimgraph.GenerateSmallWorld(n, ef, 0.1, seed), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", genKind)
	}
}

func compress(g *slimgraph.Graph, scheme string, p float64, k int, eps float64,
	seed uint64, workers int) (*slimgraph.Result, error) {
	switch scheme {
	case "uniform":
		return slimgraph.Uniform(g, 1-p, seed, workers), nil // p = removal, as in the paper's tables
	case "spectral":
		return slimgraph.SpectralSparsify(g, slimgraph.SpectralOptions{
			P: p, Variant: slimgraph.UpsilonLogN, Reweight: true, Seed: seed, Workers: workers}), nil
	case "tr":
		return slimgraph.TriangleReduction(g, slimgraph.TROptions{
			P: p, Variant: slimgraph.TRBasic, Seed: seed, Workers: workers}), nil
	case "tr-eo":
		return slimgraph.TriangleReduction(g, slimgraph.TROptions{
			P: p, Variant: slimgraph.TREO, Seed: seed, Workers: workers}), nil
	case "tr-ct":
		return slimgraph.TriangleReduction(g, slimgraph.TROptions{
			P: p, Variant: slimgraph.TRCT, Seed: seed, Workers: workers}), nil
	case "tr-maxweight":
		return slimgraph.TriangleReduction(g, slimgraph.TROptions{
			P: p, Variant: slimgraph.TRMaxWeight, Seed: seed, Workers: 1}), nil
	case "tr-collapse":
		return slimgraph.TriangleReduction(g, slimgraph.TROptions{
			P: p, Variant: slimgraph.TRCollapse, Seed: seed, Workers: workers}), nil
	case "lowdeg":
		return slimgraph.RemoveLowDegree(g, workers), nil
	case "cut":
		return slimgraph.CutSparsify(g, 0, seed, workers), nil
	case "vertexsample":
		return slimgraph.VertexSample(g, 1-p, seed, workers), nil
	case "spanner":
		return slimgraph.Spanner(g, slimgraph.SpannerOptions{
			K: k, Seed: seed, Workers: workers}), nil
	case "summarize":
		s := slimgraph.Summarize(g, slimgraph.SummarizeOptions{
			Iterations: 10, Epsilon: eps, Seed: seed, Workers: workers})
		fmt.Println(s)
		// Wrap the decoded graph so downstream reporting works uniformly.
		return &slimgraph.Result{
			Scheme: "summarize", Params: fmt.Sprintf("eps=%g", eps),
			Input: g, Output: s.Decode(), Elapsed: s.Elapsed,
		}, nil
	default:
		return nil, fmt.Errorf("unknown scheme %q", scheme)
	}
}

func printMetrics(orig, comp *slimgraph.Graph, workers int) {
	fmt.Println("-- accuracy metrics --")
	prO := slimgraph.PageRank(orig, workers)
	prC := slimgraph.PageRank(comp, workers)
	fmt.Printf("KL(PageRank orig || compressed): %.4f bits\n", slimgraph.KLDivergence(prO, prC))
	fmt.Printf("reordered PageRank pairs:        %.4f (of n^2)\n", slimgraph.ReorderedPairs(prO, prC))
	fmt.Printf("connected components:            %d -> %d\n",
		slimgraph.ComponentCount(orig), slimgraph.ComponentCount(comp))
	fmt.Printf("triangles:                       %d -> %d\n",
		slimgraph.TriangleCount(orig, workers), slimgraph.TriangleCount(comp, workers))
	roots := []slimgraph.NodeID{0, slimgraph.NodeID(orig.N() / 2)}
	fmt.Printf("BFS critical-edge retention:     %.2f\n",
		slimgraph.BFSCriticalRetention(orig, comp, roots, workers))
	if orig.Weighted() {
		fmt.Printf("MST weight:                      %.1f -> %.1f\n",
			slimgraph.MSTWeight(orig), slimgraph.MSTWeight(comp))
	}
}
