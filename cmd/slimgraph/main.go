// Command slimgraph compresses a graph with any registered lossy scheme —
// or a pipeline of them — runs stage-2 algorithms on the original and the
// compressed graph, and reports the accuracy metrics of the Slim Graph
// analytics subsystem.
//
// Usage examples:
//
//	slimgraph -gen rmat -scale 14 -ef 8 -scheme uniform -p 0.5
//	slimgraph -input graph.el -scheme spanner -k 8 -out compressed.el
//	slimgraph -gen communities -n 20000 -scheme "tr-eo:p=0.8" -metrics
//	slimgraph -scheme "tr-eo:p=0.8|spanner:k=8"   # two-stage pipeline
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"slimgraph"
)

const specGrammar = `Scheme specs (the -scheme argument) follow the registry grammar:

  spec   := stage ("|" stage)*          stages chain into a pipeline
  stage  := name [":" params]
  params := key "=" value ("," key "=" value)*

Examples: "uniform:p=0.5", "spectral:p=1,variant=avgdeg,reweight=true",
"tr-eo:p=0.8|spanner:k=8" (compress with Edge-Once TR, then spanner).
Parameters are native to each scheme (p is the keep probability for
uniform/vertexsample, the triangle sampling probability for the TR family,
the Υ scale for spectral). The -p/-k/-eps flags are shorthand appended to a
bare scheme name; they are ignored when the spec already carries parameters
or a pipeline.

Registered schemes:
`

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), "usage: slimgraph [flags]\n\nFlags:\n")
	flag.PrintDefaults()
	fmt.Fprint(flag.CommandLine.Output(), "\n"+specGrammar)
	for _, name := range slimgraph.SchemeNames() {
		info, _ := slimgraph.LookupScheme(name)
		fmt.Fprintf(flag.CommandLine.Output(), "  %-16s %s\n", name, info.About)
	}
}

func main() {
	var (
		input   = flag.String("input", "", "input edge-list file (.el/.wel); empty = use -gen")
		genKind = flag.String("gen", "rmat", "generator: rmat | er | ba | grid | communities | smallworld")
		scale   = flag.Int("scale", 12, "R-MAT scale (n = 2^scale)")
		ef      = flag.Int("ef", 8, "R-MAT edge factor")
		n       = flag.Int("n", 10000, "vertex count for non-R-MAT generators")
		seed    = flag.Uint64("seed", 1, "random seed (drives generation and compression)")
		scheme  = flag.String("scheme", "uniform",
			"scheme spec, e.g. uniform:p=0.5 or a pipeline tr-eo:p=0.8|spanner:k=8 (see usage)")
		workers  = flag.Int("workers", 0, "parallelism (0 = all CPUs)")
		weighted = flag.Bool("weighted", false, "attach uniform [1,100) weights to generated graphs")
		out      = flag.String("out", "", "write the compressed graph to this edge-list file")
		metrics  = flag.Bool("metrics", true, "run stage-2 algorithms and print accuracy metrics")
	)
	// Shorthand flags, read back through flag.Visit in buildSpec.
	flag.Float64("p", 0.5, "shorthand for the p= spec parameter")
	flag.Int("k", 8, "shorthand for the k= spec parameter (spanner stretch)")
	flag.Float64("eps", 0.1, "shorthand for the eps= spec parameter (summarization)")
	flag.Usage = usage
	flag.Parse()

	g, err := load(*input, *genKind, *scale, *ef, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slimgraph:", err)
		os.Exit(1)
	}
	if *weighted {
		g = slimgraph.WithUniformWeights(g, 1, 100, *seed+1)
	}
	fmt.Println("input:", g)

	s, err := slimgraph.ParseScheme(buildSpec(*scheme),
		slimgraph.WithSeed(*seed), slimgraph.WithWorkers(*workers))
	if err != nil {
		fmt.Fprintln(os.Stderr, "slimgraph:", err)
		os.Exit(1)
	}
	res, err := s.Apply(g)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slimgraph:", err)
		os.Exit(1)
	}
	for _, stage := range res.Stages {
		fmt.Println("  stage", stage)
	}
	if aux, ok := res.Aux.(fmt.Stringer); ok {
		fmt.Println(aux)
	}
	fmt.Println(res)
	fmt.Printf("storage: %d -> %d bytes (binary snapshot)\n",
		slimgraph.BinarySize(g), slimgraph.BinarySize(res.Output))

	if *metrics && res.VertexMap == nil {
		printMetrics(g, res.Output, *workers)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "slimgraph:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := slimgraph.WriteEdgeList(f, res.Output); err != nil {
			fmt.Fprintln(os.Stderr, "slimgraph:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}
}

// buildSpec merges the -p/-k/-eps shorthand flags into a bare scheme name.
// Flags join the spec only when the user set them explicitly and the spec
// carries no parameters or pipeline of its own — an explicit spec is always
// authoritative.
func buildSpec(spec string) string {
	if strings.ContainsAny(spec, ":|") {
		return spec
	}
	var params []string
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "p", "k", "eps":
			params = append(params, f.Name+"="+f.Value.String())
		}
	})
	if len(params) == 0 {
		return spec
	}
	return spec + ":" + strings.Join(params, ",")
}

func load(input, genKind string, scale, ef, n int, seed uint64) (*slimgraph.Graph, error) {
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return slimgraph.ReadEdgeList(f, false)
	}
	switch genKind {
	case "rmat":
		return slimgraph.GenerateRMAT(scale, ef, seed), nil
	case "er":
		return slimgraph.GenerateErdosRenyi(n, n*ef, seed), nil
	case "ba":
		return slimgraph.GenerateBarabasiAlbert(n, ef, seed), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return slimgraph.GenerateGrid(side, side, false), nil
	case "communities":
		return slimgraph.GenerateCommunities(n, 25, 0.5, n, seed), nil
	case "smallworld":
		return slimgraph.GenerateSmallWorld(n, ef, 0.1, seed), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", genKind)
	}
}

func printMetrics(orig, comp *slimgraph.Graph, workers int) {
	fmt.Println("-- accuracy metrics --")
	prO := slimgraph.PageRank(orig, workers)
	prC := slimgraph.PageRank(comp, workers)
	fmt.Printf("KL(PageRank orig || compressed): %.4f bits\n", slimgraph.KLDivergence(prO, prC))
	fmt.Printf("reordered PageRank pairs:        %.4f (of n^2)\n", slimgraph.ReorderedPairs(prO, prC))
	fmt.Printf("connected components:            %d -> %d\n",
		slimgraph.ComponentCount(orig), slimgraph.ComponentCount(comp))
	fmt.Printf("triangles:                       %d -> %d\n",
		slimgraph.TriangleCount(orig, workers), slimgraph.TriangleCount(comp, workers))
	roots := []slimgraph.NodeID{0, slimgraph.NodeID(orig.N() / 2)}
	fmt.Printf("BFS critical-edge retention:     %.2f\n",
		slimgraph.BFSCriticalRetention(orig, comp, roots, workers))
	if orig.Weighted() {
		fmt.Printf("MST weight:                      %.1f -> %.1f\n",
			slimgraph.MSTWeight(orig), slimgraph.MSTWeight(comp))
	}
}
