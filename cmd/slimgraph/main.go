// Command slimgraph compresses a graph with any registered lossy scheme —
// or a pipeline of them — runs stage-2 algorithms on the original and the
// compressed graph, and reports the accuracy metrics of the Slim Graph
// analytics subsystem.
//
// Usage examples:
//
//	slimgraph -gen rmat -scale 14 -ef 8 -scheme uniform -p 0.5
//	slimgraph -input graph.el -scheme spanner -k 8 -out compressed.el
//	slimgraph -gen communities -n 20000 -scheme "tr-eo:p=0.8" -metrics
//	slimgraph -scheme "tr-eo:p=0.8|spanner:k=8"   # two-stage pipeline
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"slimgraph"
)

const specGrammar = `Scheme specs (the -scheme argument) follow the registry grammar:

  spec   := stage ("|" stage)*          stages chain into a pipeline
  stage  := name [":" params]
  params := key "=" value ("," key "=" value)*

Examples: "uniform:p=0.5", "spectral:p=1,variant=avgdeg,reweight=true",
"tr-eo:p=0.8|spanner:k=8" (compress with Edge-Once TR, then spanner).
Parameters are native to each scheme (p is the keep probability for
uniform/vertexsample, the triangle sampling probability for the TR family,
the Υ scale for spectral). The -p/-k/-eps flags are shorthand appended to a
bare scheme name; they are ignored when the spec already carries parameters
or a pipeline.

Registered schemes:
`

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole CLI behind a testable seam: it parses args, performs the
// compression run, writes human output to stdout and diagnostics to stderr,
// and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("slimgraph", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		input   = fs.String("input", "", "input graph file: text edge list or binary snapshot, sniffed by magic")
		genKind = fs.String("gen", "rmat", "generator: rmat | er | ba | grid | communities | smallworld")
		scale   = fs.Int("scale", 12, "R-MAT scale (n = 2^scale)")
		ef      = fs.Int("ef", 8, "R-MAT edge factor")
		n       = fs.Int("n", 10000, "vertex count for non-R-MAT generators")
		seed    = fs.Uint64("seed", 1, "random seed (drives generation and compression)")
		scheme  = fs.String("scheme", "uniform",
			"scheme spec, e.g. uniform:p=0.5 or a pipeline tr-eo:p=0.8|spanner:k=8 (see usage)")
		workers  = fs.Int("workers", 0, "parallelism (0 = all CPUs)")
		weighted = fs.Bool("weighted", false, "attach uniform [1,100) weights to generated graphs")
		out      = fs.String("out", "", "write the compressed graph to this file (see -format)")
		format   = fs.String("format", "edgelist", "output format for -out: edgelist | binary | packed")
		order    = fs.String("order", "none",
			"vertex ordering for -format packed: none | degree | bfs | window (relabels on pack, records the permutation; lossless)")
		metrics = fs.Bool("metrics", true, "run stage-2 algorithms and print accuracy metrics")
	)
	// Shorthand flags, read back through fs.Visit in buildSpec.
	fs.Float64("p", 0.5, "shorthand for the p= spec parameter")
	fs.Int("k", 8, "shorthand for the k= spec parameter (spanner stretch)")
	fs.Float64("eps", 0.1, "shorthand for the eps= spec parameter (summarization)")
	fs.Usage = func() { usage(fs) }
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	// Reject a bad -format or -order before the run: by write time the
	// compression has already cost minutes and os.Create would truncate the
	// target.
	switch *format {
	case "edgelist", "binary", "packed":
	default:
		fmt.Fprintf(stderr, "slimgraph: unknown -format %q (want edgelist, binary, or packed)\n", *format)
		return 1
	}
	packOrder, err := slimgraph.ParseOrder(*order)
	if err != nil {
		fmt.Fprintln(stderr, "slimgraph:", err)
		return 1
	}
	if packOrder != slimgraph.OrderNone && *format != "packed" {
		fmt.Fprintf(stderr, "slimgraph: -order %s applies only to -format packed\n", packOrder)
		return 1
	}

	g, err := load(*input, *genKind, *scale, *ef, *n, *seed)
	if err != nil {
		fmt.Fprintln(stderr, "slimgraph:", err)
		return 1
	}
	if *weighted {
		g = slimgraph.WithUniformWeights(g, 1, 100, *seed+1)
	}
	fmt.Fprintln(stdout, "input:", g)

	s, err := slimgraph.ParseScheme(buildSpec(fs, *scheme),
		slimgraph.WithSeed(*seed), slimgraph.WithWorkers(*workers))
	if err != nil {
		fmt.Fprintln(stderr, "slimgraph:", err)
		return 1
	}
	res, err := s.Apply(g)
	if err != nil {
		fmt.Fprintln(stderr, "slimgraph:", err)
		return 1
	}
	for _, stage := range res.Stages {
		fmt.Fprintln(stdout, "  stage", stage)
	}
	if aux, ok := res.Aux.(fmt.Stringer); ok {
		fmt.Fprintln(stdout, aux)
	}
	fmt.Fprintln(stdout, res)
	fmt.Fprintln(stdout, res.ComputeStorage())

	if *metrics && res.VertexMap == nil {
		printMetrics(stdout, g, res.Output, *workers)
	}
	if *out != "" {
		if *format == "packed" {
			printOrderReport(stdout, res.Output, packOrder, *workers)
		}
		written, err := writeOutput(*out, *format, packOrder, res.Output)
		if err != nil {
			fmt.Fprintln(stderr, "slimgraph:", err)
			return 1
		}
		in := slimgraph.BinarySize(g)
		fmt.Fprintf(stdout, "wrote %s (%s, %d bytes; input binary %d bytes, %.1fx smaller)\n",
			*out, *format, written, in, float64(in)/float64(written))
	}
	return 0
}

// printOrderReport shows what the pack's gap encoding looks like and — for a
// relabeling order — what the permutation buys: payload bits per edge and
// the gap-width histogram before and after the relabel.
func printOrderReport(stdout io.Writer, g *slimgraph.Graph, order slimgraph.Order, workers int) {
	line := func(label string, h slimgraph.GapHist) {
		bitsPerEdge := 0.0
		if g.M() > 0 {
			bitsPerEdge = float64(h.PayloadBytes) * 8 / float64(g.M())
		}
		fmt.Fprintf(stdout, "  %-14s payload %d bytes (%.2f bits/edge), gap widths mean %.2f p50 %d p90 %d p99 %d\n",
			label, h.PayloadBytes, bitsPerEdge, h.MeanBits(),
			h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99))
	}
	fmt.Fprintln(stdout, "-- packed encoding --")
	before := slimgraph.GapHistogram(g, nil, workers)
	line("original IDs", before)
	if order == slimgraph.OrderNone {
		return
	}
	perm := slimgraph.ComputeOrder(g, order, workers)
	after := slimgraph.GapHistogram(g, perm, workers)
	line("order="+order.String(), after)
	if before.PayloadBytes > 0 {
		fmt.Fprintf(stdout, "  relabel shrinks the gap payload %.2fx (permutation rides in the snapshot: +%d bytes)\n",
			float64(before.PayloadBytes)/float64(after.PayloadBytes), 4*g.N())
	}
}

func usage(fs *flag.FlagSet) {
	fmt.Fprintf(fs.Output(), "usage: slimgraph [flags]\n\nFlags:\n")
	fs.PrintDefaults()
	fmt.Fprint(fs.Output(), "\n"+specGrammar)
	for _, name := range slimgraph.SchemeNames() {
		info, _ := slimgraph.LookupScheme(name)
		fmt.Fprintf(fs.Output(), "  %-16s %s\n", name, info.About)
	}
}

// writeOutput writes g to path in the selected format and returns the byte
// count. Edge lists report the file size after the fact; the binary formats
// count as they write.
func writeOutput(path, format string, order slimgraph.Order, g *slimgraph.Graph) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	switch format {
	case "edgelist":
		if err := slimgraph.WriteEdgeList(f, g); err != nil {
			return 0, err
		}
		info, err := f.Stat()
		if err != nil {
			return 0, err
		}
		return info.Size(), nil
	case "binary":
		return slimgraph.WriteBinary(f, g)
	case "packed":
		return slimgraph.WritePackedOrder(f, g, order)
	default:
		return 0, fmt.Errorf("unknown -format %q (want edgelist, binary, or packed)", format)
	}
}

// buildSpec merges the -p/-k/-eps shorthand flags into a bare scheme name.
// Flags join the spec only when the user set them explicitly and the spec
// carries no parameters or pipeline of its own — an explicit spec is always
// authoritative.
func buildSpec(fs *flag.FlagSet, spec string) string {
	if strings.ContainsAny(spec, ":|") {
		return spec
	}
	var params []string
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "p", "k", "eps":
			params = append(params, f.Name+"="+f.Value.String())
		}
	})
	if len(params) == 0 {
		return spec
	}
	return spec + ":" + strings.Join(params, ",")
}

func load(input, genKind string, scale, ef, n int, seed uint64) (*slimgraph.Graph, error) {
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		// Binary snapshots (v1 or v2) are recognized by their magic; any
		// other content parses as a text edge list.
		return slimgraph.ReadGraph(f, false)
	}
	switch genKind {
	case "rmat":
		return slimgraph.GenerateRMAT(scale, ef, seed), nil
	case "er":
		return slimgraph.GenerateErdosRenyi(n, n*ef, seed), nil
	case "ba":
		return slimgraph.GenerateBarabasiAlbert(n, ef, seed), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return slimgraph.GenerateGrid(side, side, false), nil
	case "communities":
		return slimgraph.GenerateCommunities(n, 25, 0.5, n, seed), nil
	case "smallworld":
		return slimgraph.GenerateSmallWorld(n, ef, 0.1, seed), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", genKind)
	}
}

// printMetrics reports the same Quality bundle the server's /compare
// endpoint returns, so the CLI and the service can never drift.
func printMetrics(stdout io.Writer, orig, comp *slimgraph.Graph, workers int) {
	q, err := slimgraph.CompareGraphs(orig, comp, workers)
	if err != nil {
		fmt.Fprintln(stdout, "accuracy metrics unavailable:", err)
		return
	}
	fmt.Fprintln(stdout, "-- accuracy metrics --")
	fmt.Fprintf(stdout, "KL(PageRank orig || compressed): %.4f bits\n", q.KLPageRank)
	fmt.Fprintf(stdout, "reordered PageRank pairs:        %.4f (of n^2)\n", q.ReorderedPairs)
	fmt.Fprintf(stdout, "connected components:            %d -> %d\n", q.Components, q.CompressedComponents)
	fmt.Fprintf(stdout, "triangles:                       %d -> %d\n", q.Triangles, q.CompressedTriangles)
	fmt.Fprintf(stdout, "BFS critical-edge retention:     %.2f\n", q.BFSRetention)
	fmt.Fprintf(stdout, "degree-distribution distance:    %.4f (TV)\n", q.DegreeDistance)
	if q.MSTWeight != nil {
		fmt.Fprintf(stdout, "MST weight:                      %.1f -> %.1f\n",
			*q.MSTWeight, *q.CompressedMSTWeight)
	}
}
