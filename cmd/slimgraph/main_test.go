package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"slimgraph"
)

// runCLI runs the CLI with captured output.
func runCLI(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestUsageGrammar pins the spec grammar documented by -h. The text is
// duplicated here on purpose: editing the grammar should fail this test
// until the docs and the parser agree.
func TestUsageGrammar(t *testing.T) {
	code, _, stderr := runCLI("-h")
	if code != 0 {
		t.Fatalf("-h exited %d", code)
	}
	const grammar = `Scheme specs (the -scheme argument) follow the registry grammar:

  spec   := stage ("|" stage)*          stages chain into a pipeline
  stage  := name [":" params]
  params := key "=" value ("," key "=" value)*
`
	if !strings.Contains(stderr, grammar) {
		t.Errorf("usage lost the spec grammar block; got:\n%s", stderr)
	}
	// Every registered scheme is listed with its About line.
	for _, name := range slimgraph.SchemeNames() {
		info, _ := slimgraph.LookupScheme(name)
		if !strings.Contains(stderr, info.About) {
			t.Errorf("usage does not document scheme %q (%s)", name, info.About)
		}
	}
}

// TestInapplicableFlagErrors pins the exact error messages for shorthand
// flags a scheme does not accept — the intentional PR 1 behavior change
// from silently ignoring them.
func TestInapplicableFlagErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string // exact stderr
	}{
		{
			name: "lowdeg rejects -p",
			args: []string{"-gen", "grid", "-n", "16", "-scheme", "lowdeg", "-p", "0.3", "-metrics=false"},
			want: "slimgraph: schemes: lowdeg does not accept option \"p\" (accepted: seed,workers)\n",
		},
		{
			name: "spanner rejects -p",
			args: []string{"-gen", "grid", "-n", "16", "-scheme", "spanner", "-p", "0.4", "-metrics=false"},
			want: "slimgraph: schemes: spanner does not accept option \"p\" (accepted: k,mode,seed,workers)\n",
		},
		{
			name: "uniform rejects -k",
			args: []string{"-gen", "grid", "-n", "16", "-scheme", "uniform", "-k", "4", "-metrics=false"},
			want: "slimgraph: schemes: uniform does not accept option \"k\" (accepted: p,seed,workers)\n",
		},
		{
			name: "bad format fails before the run",
			args: []string{"-format", "bogus"},
			want: "slimgraph: unknown -format \"bogus\" (want edgelist, binary, or packed)\n",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(tc.args...)
			if code != 1 {
				t.Fatalf("exit %d, want 1 (stderr %q)", code, stderr)
			}
			if stderr != tc.want {
				t.Errorf("stderr = %q, want %q", stderr, tc.want)
			}
		})
	}
}

// TestUnknownSchemeListsRegistry checks the unknown-scheme error names the
// registry contents.
func TestUnknownSchemeListsRegistry(t *testing.T) {
	code, _, stderr := runCLI("-gen", "grid", "-n", "16", "-scheme", "nope", "-metrics=false")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, `unknown scheme "nope"`) ||
		!strings.Contains(stderr, "uniform") || !strings.Contains(stderr, "tr-eo") {
		t.Errorf("unknown-scheme error should list the registry: %q", stderr)
	}
}

// TestSpecPinning pins the spec-driven output lines: shorthand merging onto
// bare names, explicit specs winning over shorthand, and pipeline stage
// reporting.
func TestSpecPinning(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want []string // substrings of stdout, in order of appearance
	}{
		{
			name: "shorthand merges onto a bare scheme name",
			args: []string{"-gen", "grid", "-n", "9", "-scheme", "uniform", "-p", "0.25", "-metrics=false"},
			want: []string{"input: undirected graph: n=9 m=12", "uniform(p=0.25): m 12 -> "},
		},
		{
			name: "explicit spec parameters beat shorthand",
			args: []string{"-gen", "grid", "-n", "9", "-scheme", "uniform:p=0.9", "-p", "0.1", "-metrics=false"},
			want: []string{"uniform(p=0.9): m 12 -> "},
		},
		{
			name: "pipelines report stages and the joined canonical spec",
			args: []string{"-gen", "grid", "-n", "9", "-scheme", "tr:p=0|spanner:k=2", "-metrics=false"},
			want: []string{
				"  stage tr(p=0): m 12 -> 12",
				"  stage spanner(k=2,mode=pervertex): m 12 -> ",
				"pipeline(tr:p=0|spanner:k=2,mode=pervertex): m 12 -> ",
			},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			code, stdout, stderr := runCLI(tc.args...)
			if code != 0 {
				t.Fatalf("exit %d, stderr %q", code, stderr)
			}
			rest := stdout
			for _, want := range tc.want {
				i := strings.Index(rest, want)
				if i < 0 {
					t.Fatalf("stdout missing %q (in order); full output:\n%s", want, stdout)
				}
				rest = rest[i+len(want):]
			}
		})
	}
}

// TestFormatRoundTrips writes the compressed graph in every -format and
// reads each file back, requiring graph equality with the same compression
// done offline through the library.
func TestFormatRoundTrips(t *testing.T) {
	g := slimgraph.GenerateErdosRenyi(200, 400, 3)
	sch, err := slimgraph.ParseScheme("uniform:p=0.5",
		slimgraph.WithSeed(3), slimgraph.WithWorkers(0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sch.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	want := res.Output

	dir := t.TempDir()
	for _, format := range []string{"edgelist", "binary", "packed"} {
		t.Run(format, func(t *testing.T) {
			path := filepath.Join(dir, "out."+format)
			code, stdout, stderr := runCLI(
				"-gen", "er", "-n", "200", "-ef", "2", "-seed", "3",
				"-scheme", "uniform", "-p", "0.5", "-metrics=false",
				"-out", path, "-format", format)
			if code != 0 {
				t.Fatalf("exit %d, stderr %q", code, stderr)
			}
			if !strings.Contains(stdout, "wrote "+path+" ("+format+", ") {
				t.Errorf("missing write report in stdout:\n%s", stdout)
			}
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			got, err := slimgraph.ReadGraph(f, false)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Errorf("%s round trip diverged from the offline library run: got %v, want %v",
					format, got, want)
			}
		})
	}
}

// TestSnapshotInputSniffing feeds run a packed snapshot through -input and
// checks it loads by magic, not by extension.
func TestSnapshotInputSniffing(t *testing.T) {
	g := slimgraph.GenerateErdosRenyi(100, 200, 1)
	path := filepath.Join(t.TempDir(), "snap.whatever")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := slimgraph.WritePacked(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	code, stdout, stderr := runCLI("-input", path, "-scheme", "lowdeg", "-metrics=false")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "input: "+g.String()) {
		t.Errorf("snapshot input not recognized (want %q):\n%s", g.String(), stdout)
	}
}
