// Command slimbench regenerates the tables and figures of the paper's
// evaluation section on synthetic dataset analogs. Every artifact prints as
// an aligned text table with a "paper shape" note describing what the
// original reported; EXPERIMENTS.md records the comparison.
//
// Usage:
//
//	slimbench                      # everything at scale 1
//	slimbench -scale 0             # quick smoke run
//	slimbench -only table5,fig7   # a subset
//	slimbench -guidelines          # just the §7.5 selection guide
//	slimbench -compare "uniform:p=0.5;tr-eo:p=0.8|spanner:k=8"
//	                               # arbitrary registry specs side by side
//	slimbench -only triangles -cpuprofile cpu.out
//	                               # profile a run for perf work
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"

	"slimgraph/internal/experiments"
)

var drivers = []struct {
	key  string
	run  func(experiments.Config) *experiments.Table
	name string
}{
	{"table2", experiments.Table2, "Table 2: remaining-edge formulas"},
	{"table3", experiments.Table3, "Table 3: property bounds"},
	{"fig5", experiments.Figure5, "Figure 5: performance/storage tradeoffs"},
	{"fig6a", experiments.Figure6Spectral, "Figure 6 left: spectral variants"},
	{"fig6b", experiments.Figure6TR, "Figure 6 right: TR variants"},
	{"table5", experiments.Table5, "Table 5: PageRank KL divergence"},
	{"table6", experiments.Table6, "Table 6: triangles per vertex"},
	{"bfs", experiments.BFSCritical, "§7.2: BFS critical edges"},
	{"pairs", experiments.ReorderedPairs, "§7.2: reordered pairs"},
	{"fig7", experiments.Figure7, "Figure 7: spanner degree distributions"},
	{"fig8", experiments.Figure8, "Figure 8: distributed compression"},
	{"weighted", experiments.WeightedTR, "§7.1: weighted TR"},
	{"timing", experiments.Timing, "§7.4: compression timing"},
	{"lowrank", experiments.LowRank, "§7.4: low-rank baseline"},
	{"cuts", experiments.CutPreservation, "§6.3: min-cut preservation (+ §4.6 cut sparsifier)"},
	{"core", experiments.CoreBench, "Engine core: rebuild-free CSR construction vs sort-based reference"},
	{"triangles", experiments.TriangleBench, "Triangle engine: oriented forward CSR vs pre-engine reference"},
	{"storage", experiments.Storage, "§5 storage: packed (v2) snapshots + in-place packed-BFS slowdown"},
	{"packed", experiments.PackedKernels, "Packed kernels: locality orderings × packed-vs-raw runtime (no Unpack)"},
	{"abl-eo", experiments.AblationEO, "Ablation: Edge-Once semantics"},
	{"abl-spanner", experiments.AblationSpanner, "Ablation: spanner inter-cluster rule"},
	{"abl-upsilon", experiments.AblationUpsilon, "Ablation: spectral Υ sweep"},
}

func main() {
	var (
		scale      = flag.Int("scale", 1, "0 = smoke, 1 = default, 2 = large")
		seed       = flag.Uint64("seed", 0, "base seed (0 = built-in default)")
		workers    = flag.Int("workers", 0, "parallelism (0 = all CPUs)")
		only       = flag.String("only", "", "comma-separated subset, e.g. table5,fig7")
		guidelines = flag.Bool("guidelines", false, "print only the §7.5 scheme-selection guide")
		list       = flag.Bool("list", false, "list experiment keys and exit")
		compare    = flag.String("compare", "",
			"semicolon-separated registry specs (schemes or pipelines) to compare, e.g. "+
				`"uniform:p=0.5;tr-eo:p=0.8|spanner:k=8"`)
		cpuprofile = flag.String("cpuprofile", "",
			"write a pprof CPU profile of the run to this file (go tool pprof <file>)")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "slimbench: -cpuprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "slimbench: -cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if *list {
		for _, d := range drivers {
			fmt.Printf("%-10s %s\n", d.key, d.name)
		}
		return
	}
	if *guidelines {
		experiments.Guidelines().Fprint(os.Stdout)
		return
	}
	cfg := experiments.Config{Scale: *scale, Seed: *seed, Workers: *workers}
	if *compare != "" {
		var specs []string
		for _, s := range strings.Split(*compare, ";") {
			if s = strings.TrimSpace(s); s != "" {
				specs = append(specs, s)
			}
		}
		t, err := experiments.Compare(cfg, specs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "slimbench:", err)
			os.Exit(1)
		}
		t.Fprint(os.Stdout)
		return
	}
	selected := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(k)] = true
		}
	}
	ran := 0
	for _, d := range drivers {
		if len(selected) > 0 && !selected[d.key] {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", d.name)
		d.run(cfg).Fprint(os.Stdout)
		ran++
	}
	if len(selected) > 0 && ran < len(selected) {
		fmt.Fprintln(os.Stderr, "warning: some -only keys matched nothing; use -list")
	}
	if len(selected) == 0 {
		experiments.Guidelines().Fprint(os.Stdout)
	}
}
