// Command slimgraphd serves the Slim Graph compress-and-query API over
// HTTP/JSON: a catalog of resident graphs, a single-flight cache of
// compressed variants, and approximate-analytics query endpoints.
//
// It runs in one of three roles:
//
//	slimgraphd -addr :8080                       # standalone (the default)
//	slimgraphd -role shard -addr :8081           # cluster member
//	slimgraphd -role coordinator -addr :8080 \
//	    -peers http://h1:8081,http://h2:8081     # cluster frontend
//
// A coordinator serves the same /v1/graphs API as a standalone server by
// scatter/gathering over its -peers shards (see internal/cluster). All
// roles expose /healthz (process liveness), /readyz (traffic readiness:
// preloads finished; for a coordinator, every shard ready), and /metrics
// (Prometheus text exposition: per-endpoint latency histograms, variant
// cache counters, catalog residency, per-shard sub-request timing on a
// coordinator). Every request carries an X-Slimgraph-Request ID — assigned
// if absent, forwarded on coordinator→shard sub-requests — and emits one
// structured key=value log line on stderr. -debug-addr starts a second
// listener with /debug/pprof and a /metrics mirror for live profiling.
// All roles shut down gracefully on SIGINT/SIGTERM, draining in-flight
// requests up to -drain before exiting.
//
// See the README "Serving", "Running a cluster", and "Observability"
// sections for endpoint walkthroughs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"slimgraph/internal/cluster"
	"slimgraph/internal/graphio"
	"slimgraph/internal/obs"
	"slimgraph/internal/resilience"
	"slimgraph/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole daemon behind a testable seam: it parses args, wires the
// role, and serves until a signal. Flag-validation failures return 2 and
// runtime failures 1, so the exit paths golden tests pin are ordinary
// returns rather than log.Fatalf process exits.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("slimgraphd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		role      = fs.String("role", "standalone", "process role: standalone | coordinator | shard")
		peers     = fs.String("peers", "", "comma-separated shard base URLs (coordinator only)")
		shardTO   = fs.Duration("shard-timeout", 15*time.Second, "per-shard sub-request deadline (coordinator only)")
		drain     = fs.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
		cacheN    = fs.Int("cache", 64, "max resident compressed variants (LRU)")
		maxConc   = fs.Int("max-concurrent", 0, "max heavy requests in flight (0 = 2x CPUs)")
		maxWork   = fs.Int("max-workers", 0, "per-request worker-budget cap (0 = all CPUs)")
		memory    = fs.String("memory", server.MemoryRaw, "residency policy for -load/-demo graphs: raw | packed")
		dataDir   = fs.String("data-dir", "", "disk tier: persist graphs as servable snapshots here and re-attach them memory-mapped on restart (standalone/shard only)")
		memBudget = fs.String("mem-budget", "", "catalog heap budget, e.g. 512M or 4G; past it cold graphs spill to -data-dir and serve memory-mapped (requires -data-dir)")
		demo      = fs.Int("demo", 0, "preload a demo R-MAT graph named \"demo\" at this scale (0 = off)")
		debugAddr = fs.String("debug-addr", "", "serve /debug/pprof and a /metrics mirror on this extra address (empty = off)")
		version   = fs.Bool("version", false, "print build/version info and exit")
		retries   = fs.Int("retries", 0, "sub-request attempts per shard call (coordinator only; 0 = default 3)")
		breakerN  = fs.Int("breaker-threshold", 0, "consecutive failures before a shard's breaker opens (coordinator only; 0 = default 3)")
		breakerCD = fs.Duration("breaker-cooldown", 0, "open-breaker cooldown before a half-open probe (coordinator only; 0 = default 5s)")
		probeIvl  = fs.Duration("probe-interval", 0, "background /readyz health-probe interval (coordinator only; 0 = off)")
		faultSpec = fs.String("fault-inject", "", "deterministic fault-injection spec applied to inbound requests, e.g. \"path=/internal/v1,p=0.1,seed=7,status=503\" (testing only)")
	)
	var loads []string
	fs.Func("load", "preload name=path (edge list or snapshot; repeatable)", func(v string) error {
		if !strings.Contains(v, "=") {
			return fmt.Errorf("want name=path, got %q", v)
		}
		loads = append(loads, v)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *version {
		b := obs.Build()
		rev := b.Revision
		if rev == "" {
			rev = "unknown"
		}
		if b.Modified {
			rev += "+dirty"
		}
		fmt.Fprintf(stdout, "slimgraphd %s (%s, revision %s)\n", b.Version, b.GoVersion, rev)
		return 0
	}

	budget, err := parseBytes(*memBudget)
	if err != nil {
		fmt.Fprintf(stderr, "slimgraphd: -mem-budget: %v\n", err)
		return 2
	}
	if budget > 0 && *dataDir == "" {
		fmt.Fprintln(stderr, "slimgraphd: -mem-budget requires -data-dir (spilled graphs need somewhere to go)")
		return 2
	}

	// Operational messages go through lg; per-request structured logging
	// goes through the obs logger the server options carry.
	lg := log.New(stderr, "", log.LstdFlags)
	opts := server.Options{
		CacheCapacity: *cacheN,
		MaxConcurrent: *maxConc,
		MaxWorkers:    *maxWork,
		Logger:        obs.NewTextLogger(stderr),
		DataDir:       *dataDir,
		MemBudget:     budget,
	}

	var srv *server.Server
	var handler http.Handler
	switch *role {
	case "standalone", "shard":
		if *peers != "" {
			fmt.Fprintln(stderr, "slimgraphd: -peers applies only to -role coordinator")
			return 2
		}
		srv, err = server.New(opts)
		if err != nil {
			fmt.Fprintf(stderr, "slimgraphd: -data-dir: %v\n", err)
			return 1
		}
		for _, name := range srv.Local().Attached() {
			lg.Printf("attached %q from %s (mmap'd, zero decode)", name, *dataDir)
		}
		// Hold traffic off until the preloads finish; a load balancer
		// watching /readyz won't route to a shard still parsing graphs.
		srv.SetNotReady("loading graphs")
		handler = srv.Handler()
		if *role == "shard" {
			handler = cluster.WrapShard(srv).Handler()
		}
	case "coordinator":
		if *dataDir != "" {
			fmt.Fprintln(stderr, "slimgraphd: -data-dir applies only to standalone and shard roles (a coordinator holds no graphs)")
			return 2
		}
		shards := splitPeers(*peers)
		if len(shards) == 0 {
			fmt.Fprintln(stderr, "slimgraphd: -role coordinator needs -peers")
			return 2
		}
		coord, err := cluster.NewCoordinator(cluster.Options{
			Shards:           shards,
			ShardTimeout:     *shardTO,
			Retry:            resilience.RetryPolicy{MaxAttempts: *retries},
			BreakerThreshold: *breakerN,
			BreakerCooldown:  *breakerCD,
			ProbeInterval:    *probeIvl,
		})
		if err != nil {
			fmt.Fprintf(stderr, "slimgraphd: %v\n", err)
			return 2
		}
		srv = server.NewWithBackend(coord, coord, opts)
		coord.Instrument(srv.Registry())
		srv.SetNotReady("loading graphs")
		srv.SetReadyCheck(coord.Ready)
		handler = srv.Handler()
		lg.Printf("coordinating %d shards: %s", len(shards), strings.Join(shards, ", "))
	default:
		fmt.Fprintf(stderr, "slimgraphd: unknown -role %q (standalone | coordinator | shard)\n", *role)
		return 2
	}

	if *faultSpec != "" {
		inj, err := resilience.ParseFaultSpec(*faultSpec)
		if err != nil {
			fmt.Fprintf(stderr, "slimgraphd: -fault-inject: %v\n", err)
			return 2
		}
		// The injector wraps the whole handler (observability included), so
		// injected drops and truncations look exactly like network faults to
		// clients — which is the point.
		handler = inj.Middleware(handler)
		lg.Printf("fault injection armed: %d rule(s) from spec %q", len(inj.Rules()), *faultSpec)
	}

	for _, nv := range loads {
		name, path, _ := strings.Cut(nv, "=")
		if err := preload(srv, name, path, *memory); err != nil {
			fmt.Fprintf(stderr, "slimgraphd: -load %s: %v\n", nv, err)
			return 1
		}
		lg.Printf("loaded %q from %s", name, path)
	}
	if *demo > 0 {
		if err := srv.AddGenerated("demo", "rmat", *demo, 8, 0, 1, false, *memory, 0); err != nil {
			fmt.Fprintf(stderr, "slimgraphd: -demo: %v\n", err)
			return 1
		}
		lg.Printf("generated demo graph at scale %d", *demo)
	}
	srv.SetReady()

	if *debugAddr != "" {
		go serveDebug(lg, *debugAddr, srv.Registry())
	}
	if err := serve(lg, *addr, *role, handler, *drain); err != nil {
		fmt.Fprintf(stderr, "slimgraphd: %v\n", err)
		return 1
	}
	return 0
}

// serveDebug runs the introspection listener: the pprof surface (explicitly
// registered — slimgraphd never touches http.DefaultServeMux) plus a mirror
// of the metrics registry. Keeping it on its own address means profiling
// endpoints are never exposed on the public port.
func serveDebug(lg *log.Logger, addr string, reg *obs.Registry) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", reg.Handler())
	lg.Printf("debug listener (pprof, metrics) on %s", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		lg.Printf("debug listener: %v", err)
	}
}

// serve runs the HTTP server until SIGINT/SIGTERM, then drains: new
// connections stop, in-flight requests get up to the drain deadline, and
// the exit is clean so orchestrators don't log a crash on every deploy.
func serve(lg *log.Logger, addr, role string, handler http.Handler, drain time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	hs := &http.Server{Addr: addr, Handler: handler}
	errc := make(chan error, 1)
	go func() {
		lg.Printf("slimgraphd %s listening on %s", role, addr)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	lg.Printf("slimgraphd shutting down (draining up to %v)", drain)
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	lg.Printf("slimgraphd stopped")
	return nil
}

// splitPeers parses the -peers list, dropping empty entries and trailing
// slashes so URL joins stay clean.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseBytes parses a human byte size: a plain integer, or one with a K, M,
// or G suffix (powers of 1024). Empty means 0 (unbounded).
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	orig := s
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm', 'M':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g', 'G':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("want a byte size like 512M or 4G, got %q", orig)
	}
	return n * mult, nil
}

// preload loads one graph file into the catalog before serving.
func preload(srv *server.Server, name, path, memory string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := graphio.ReadAuto(f, false)
	if err != nil {
		return err
	}
	return srv.AddGraph(name, memory, "file:"+path, g, 0)
}
