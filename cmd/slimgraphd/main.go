// Command slimgraphd serves the Slim Graph compress-and-query API over
// HTTP/JSON: a catalog of resident graphs, a single-flight cache of
// compressed variants, and approximate-analytics query endpoints.
//
//	slimgraphd -addr :8080
//	slimgraphd -addr :8080 -load social=graph.packed -demo 12
//
// See the README "Serving" section for the endpoint walkthrough.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"slimgraph/internal/graphio"
	"slimgraph/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		cacheN  = flag.Int("cache", 64, "max resident compressed variants (LRU)")
		maxConc = flag.Int("max-concurrent", 0, "max heavy requests in flight (0 = 2x CPUs)")
		maxWork = flag.Int("max-workers", 0, "per-request worker-budget cap (0 = all CPUs)")
		memory  = flag.String("memory", server.MemoryRaw, "residency policy for -load/-demo graphs: raw | packed")
		demo    = flag.Int("demo", 0, "preload a demo R-MAT graph named \"demo\" at this scale (0 = off)")
	)
	var loads []string
	flag.Func("load", "preload name=path (edge list or snapshot; repeatable)", func(v string) error {
		if !strings.Contains(v, "=") {
			return fmt.Errorf("want name=path, got %q", v)
		}
		loads = append(loads, v)
		return nil
	})
	flag.Parse()

	srv := server.New(server.Options{
		CacheCapacity: *cacheN,
		MaxConcurrent: *maxConc,
		MaxWorkers:    *maxWork,
	})
	for _, nv := range loads {
		name, path, _ := strings.Cut(nv, "=")
		if err := preload(srv, name, path, *memory); err != nil {
			log.Fatalf("slimgraphd: -load %s: %v", nv, err)
		}
		log.Printf("loaded %q from %s", name, path)
	}
	if *demo > 0 {
		if err := srv.AddGenerated("demo", "rmat", *demo, 8, 0, 1, false, *memory, 0); err != nil {
			log.Fatalf("slimgraphd: -demo: %v", err)
		}
		log.Printf("generated demo graph at scale %d", *demo)
	}

	log.Printf("slimgraphd listening on %s", *addr)
	if err := http.ListenAndServe(*addr, logging(srv.Handler())); err != nil {
		log.Fatalf("slimgraphd: %v", err)
	}
}

// preload loads one graph file into the catalog before serving.
func preload(srv *server.Server, name, path, memory string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := graphio.ReadAuto(f, false)
	if err != nil {
		return err
	}
	return srv.AddGraph(name, memory, "file:"+path, g, 0)
}

// logging is a minimal request log: method, path, and wall time.
func logging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %v", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}
