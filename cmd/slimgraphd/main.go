// Command slimgraphd serves the Slim Graph compress-and-query API over
// HTTP/JSON: a catalog of resident graphs, a single-flight cache of
// compressed variants, and approximate-analytics query endpoints.
//
// It runs in one of three roles:
//
//	slimgraphd -addr :8080                       # standalone (the default)
//	slimgraphd -role shard -addr :8081           # cluster member
//	slimgraphd -role coordinator -addr :8080 \
//	    -peers http://h1:8081,http://h2:8081     # cluster frontend
//
// A coordinator serves the same /v1/graphs API as a standalone server by
// scatter/gathering over its -peers shards (see internal/cluster). All
// roles expose /healthz (process liveness) and /readyz (traffic
// readiness: preloads finished; for a coordinator, every shard ready) and
// shut down gracefully on SIGINT/SIGTERM, draining in-flight requests up
// to -drain before exiting.
//
// See the README "Serving" and "Running a cluster" sections for endpoint
// walkthroughs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"slimgraph/internal/cluster"
	"slimgraph/internal/graphio"
	"slimgraph/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		role    = flag.String("role", "standalone", "process role: standalone | coordinator | shard")
		peers   = flag.String("peers", "", "comma-separated shard base URLs (coordinator only)")
		shardTO = flag.Duration("shard-timeout", 15*time.Second, "per-shard sub-request deadline (coordinator only)")
		drain   = flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
		cacheN  = flag.Int("cache", 64, "max resident compressed variants (LRU)")
		maxConc = flag.Int("max-concurrent", 0, "max heavy requests in flight (0 = 2x CPUs)")
		maxWork = flag.Int("max-workers", 0, "per-request worker-budget cap (0 = all CPUs)")
		memory  = flag.String("memory", server.MemoryRaw, "residency policy for -load/-demo graphs: raw | packed")
		demo    = flag.Int("demo", 0, "preload a demo R-MAT graph named \"demo\" at this scale (0 = off)")
	)
	var loads []string
	flag.Func("load", "preload name=path (edge list or snapshot; repeatable)", func(v string) error {
		if !strings.Contains(v, "=") {
			return fmt.Errorf("want name=path, got %q", v)
		}
		loads = append(loads, v)
		return nil
	})
	flag.Parse()

	opts := server.Options{
		CacheCapacity: *cacheN,
		MaxConcurrent: *maxConc,
		MaxWorkers:    *maxWork,
	}

	var srv *server.Server
	var handler http.Handler
	switch *role {
	case "standalone", "shard":
		srv = server.New(opts)
		// Hold traffic off until the preloads finish; a load balancer
		// watching /readyz won't route to a shard still parsing graphs.
		srv.SetNotReady("loading graphs")
		handler = srv.Handler()
		if *role == "shard" {
			handler = cluster.WrapShard(srv).Handler()
		}
		if *peers != "" {
			log.Fatalf("slimgraphd: -peers applies only to -role coordinator")
		}
	case "coordinator":
		shards := splitPeers(*peers)
		if len(shards) == 0 {
			log.Fatalf("slimgraphd: -role coordinator needs -peers")
		}
		coord, err := cluster.NewCoordinator(cluster.Options{Shards: shards, ShardTimeout: *shardTO})
		if err != nil {
			log.Fatalf("slimgraphd: %v", err)
		}
		srv = server.NewWithBackend(coord, coord, opts)
		srv.SetNotReady("loading graphs")
		srv.SetReadyCheck(coord.Ready)
		handler = srv.Handler()
		log.Printf("coordinating %d shards: %s", len(shards), strings.Join(shards, ", "))
	default:
		log.Fatalf("slimgraphd: unknown -role %q (standalone | coordinator | shard)", *role)
	}

	for _, nv := range loads {
		name, path, _ := strings.Cut(nv, "=")
		if err := preload(srv, name, path, *memory); err != nil {
			log.Fatalf("slimgraphd: -load %s: %v", nv, err)
		}
		log.Printf("loaded %q from %s", name, path)
	}
	if *demo > 0 {
		if err := srv.AddGenerated("demo", "rmat", *demo, 8, 0, 1, false, *memory, 0); err != nil {
			log.Fatalf("slimgraphd: -demo: %v", err)
		}
		log.Printf("generated demo graph at scale %d", *demo)
	}
	srv.SetReady()

	if err := serve(*addr, *role, logging(handler), *drain); err != nil {
		log.Fatalf("slimgraphd: %v", err)
	}
}

// serve runs the HTTP server until SIGINT/SIGTERM, then drains: new
// connections stop, in-flight requests get up to the drain deadline, and
// the exit is clean so orchestrators don't log a crash on every deploy.
func serve(addr, role string, handler http.Handler, drain time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	hs := &http.Server{Addr: addr, Handler: handler}
	errc := make(chan error, 1)
	go func() {
		log.Printf("slimgraphd %s listening on %s", role, addr)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("slimgraphd shutting down (draining up to %v)", drain)
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("slimgraphd stopped")
	return nil
}

// splitPeers parses the -peers list, dropping empty entries and trailing
// slashes so URL joins stay clean.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// preload loads one graph file into the catalog before serving.
func preload(srv *server.Server, name, path, memory string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := graphio.ReadAuto(f, false)
	if err != nil {
		return err
	}
	return srv.AddGraph(name, memory, "file:"+path, g, 0)
}

// logging is a minimal request log: method, path, and wall time.
func logging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %v", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}
