package main

import (
	"strings"
	"testing"
)

// runCapture invokes run with captured stdout/stderr.
func runCapture(args ...string) (code int, stdout, stderr string) {
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestRunFlagValidation pins the exit codes and messages of every
// flag-validation path: 2 for usage errors, 1 for runtime failures, 0 for
// informational exits.
func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name       string
		args       []string
		wantCode   int
		wantStderr string // substring; "" means don't check
	}{
		{"peers without coordinator role", []string{"-peers", "http://x:1"},
			2, "-peers applies only to -role coordinator"},
		{"peers with shard role", []string{"-role", "shard", "-peers", "http://x:1"},
			2, "-peers applies only to -role coordinator"},
		{"coordinator without peers", []string{"-role", "coordinator"},
			2, "-role coordinator needs -peers"},
		{"unknown role", []string{"-role", "replica"},
			2, `unknown -role "replica"`},
		{"load without equals", []string{"-load", "justapath"},
			2, "want name=path"},
		{"unknown flag", []string{"-no-such-flag"},
			2, "flag provided but not defined"},
		{"load missing file", []string{"-load", "g=/nonexistent/graph.el"},
			1, "no such file"},
		{"mem-budget without data-dir", []string{"-mem-budget", "512M"},
			2, "-mem-budget requires -data-dir"},
		{"malformed mem-budget", []string{"-mem-budget", "lots"},
			2, `want a byte size like 512M or 4G, got "lots"`},
		{"negative mem-budget", []string{"-mem-budget", "-1G"},
			2, "want a byte size"},
		{"data-dir on coordinator", []string{"-role", "coordinator",
			"-peers", "http://x:1", "-data-dir", "/tmp/x"},
			2, "a coordinator holds no graphs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCapture(tc.args...)
			if code != tc.wantCode {
				t.Fatalf("exit code %d, want %d; stderr:\n%s", code, tc.wantCode, stderr)
			}
			if tc.wantStderr != "" && !strings.Contains(stderr, tc.wantStderr) {
				t.Fatalf("stderr missing %q:\n%s", tc.wantStderr, stderr)
			}
		})
	}
}

func TestRunHelp(t *testing.T) {
	code, _, stderr := runCapture("-h")
	if code != 0 {
		t.Fatalf("-h exit code %d, want 0", code)
	}
	if !strings.Contains(stderr, "-role") || !strings.Contains(stderr, "-debug-addr") {
		t.Fatalf("usage text incomplete:\n%s", stderr)
	}
}

func TestRunVersion(t *testing.T) {
	code, stdout, stderr := runCapture("-version")
	if code != 0 {
		t.Fatalf("-version exit code %d, want 0; stderr: %s", code, stderr)
	}
	if !strings.HasPrefix(stdout, "slimgraphd ") || !strings.Contains(stdout, "go1.") {
		t.Fatalf("version output %q", stdout)
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in      string
		want    int64
		wantErr bool
	}{
		{"", 0, false},
		{"  ", 0, false},
		{"0", 0, false},
		{"1024", 1024, false},
		{"4k", 4 << 10, false},
		{"512M", 512 << 20, false},
		{"4G", 4 << 30, false},
		{"2g", 2 << 30, false},
		{"1.5G", 0, true},
		{"G", 0, true},
		{"-1G", 0, true},
		{"lots", 0, true},
	}
	for _, tc := range cases {
		got, err := parseBytes(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("parseBytes(%q) err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if got != tc.want {
			t.Errorf("parseBytes(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestSplitPeers(t *testing.T) {
	got := splitPeers(" http://a:1/, ,http://b:2 ,")
	want := []string{"http://a:1", "http://b:2"}
	if len(got) != len(want) {
		t.Fatalf("splitPeers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitPeers = %v, want %v", got, want)
		}
	}
}
