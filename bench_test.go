// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per artifact; see DESIGN.md §4 for the index). Each runs
// the corresponding internal/experiments driver at smoke scale so that
// `go test -bench=.` completes quickly; run `cmd/slimbench -scale 1` (or 2)
// for paper-shape output tables.
package slimgraph_test

import (
	"io"
	"testing"

	"slimgraph"
	"slimgraph/internal/experiments"
)

func benchConfig() experiments.Config {
	return experiments.Config{Scale: 0, Seed: 1, Workers: 0}
}

func runTable(b *testing.B, f func(experiments.Config) *experiments.Table) {
	b.Helper()
	cfg := benchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := f(cfg)
		tab.Fprint(io.Discard)
	}
}

func BenchmarkTable2_RemainingEdges(b *testing.B) { runTable(b, experiments.Table2) }
func BenchmarkTable3_Bounds(b *testing.B)         { runTable(b, experiments.Table3) }
func BenchmarkFigure5_Tradeoffs(b *testing.B)     { runTable(b, experiments.Figure5) }
func BenchmarkFigure6_Spectral(b *testing.B)      { runTable(b, experiments.Figure6Spectral) }
func BenchmarkFigure6_TR(b *testing.B)            { runTable(b, experiments.Figure6TR) }
func BenchmarkTable5_KLDivergence(b *testing.B)   { runTable(b, experiments.Table5) }
func BenchmarkTable6_Triangles(b *testing.B)      { runTable(b, experiments.Table6) }
func BenchmarkBFSCriticalEdges(b *testing.B)      { runTable(b, experiments.BFSCritical) }
func BenchmarkReorderedPairs(b *testing.B)        { runTable(b, experiments.ReorderedPairs) }
func BenchmarkFigure7_DegreeDist(b *testing.B)    { runTable(b, experiments.Figure7) }
func BenchmarkFigure8_Distributed(b *testing.B)   { runTable(b, experiments.Figure8) }
func BenchmarkWeightedTR(b *testing.B)            { runTable(b, experiments.WeightedTR) }
func BenchmarkCompressionTiming(b *testing.B)     { runTable(b, experiments.Timing) }
func BenchmarkLowRankBaseline(b *testing.B)       { runTable(b, experiments.LowRank) }
func BenchmarkCutPreservation(b *testing.B)       { runTable(b, experiments.CutPreservation) }
func BenchmarkAblationEO(b *testing.B)            { runTable(b, experiments.AblationEO) }
func BenchmarkAblationSpanner(b *testing.B)       { runTable(b, experiments.AblationSpanner) }
func BenchmarkAblationUpsilon(b *testing.B)       { runTable(b, experiments.AblationUpsilon) }

// Micro-benchmarks of the public API on a fixed mid-size graph, for
// regression tracking of the kernels themselves.

func benchGraph(b *testing.B) *slimgraph.Graph {
	b.Helper()
	return slimgraph.GenerateRMAT(13, 8, 1)
}

func BenchmarkSchemeUniform(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slimgraph.Uniform(g, 0.5, uint64(i), 0)
	}
}

func BenchmarkSchemeSpectral(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slimgraph.SpectralSparsify(g, slimgraph.SpectralOptions{
			P: 1, Variant: slimgraph.UpsilonLogN, Seed: uint64(i)})
	}
}

func BenchmarkSchemeTREO(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slimgraph.TriangleReduction(g, slimgraph.TROptions{
			P: 0.5, Variant: slimgraph.TREO, Seed: uint64(i)})
	}
}

func BenchmarkSchemeSpanner(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slimgraph.Spanner(g, slimgraph.SpannerOptions{K: 8, Seed: uint64(i)})
	}
}

func BenchmarkAlgoPageRank(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slimgraph.PageRank(g, 0)
	}
}

func BenchmarkAlgoTriangleCount(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slimgraph.TriangleCount(g, 0)
	}
}
