// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per artifact; see DESIGN.md §4 for the index). Each runs
// the corresponding internal/experiments driver at smoke scale so that
// `go test -bench=.` completes quickly; run `cmd/slimbench -scale 1` (or 2)
// for paper-shape output tables.
package slimgraph_test

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"slimgraph"
	"slimgraph/internal/core"
	"slimgraph/internal/experiments"
	"slimgraph/internal/gen"
	"slimgraph/internal/graph"
	"slimgraph/internal/graphio"
	"slimgraph/internal/metrics"
	"slimgraph/internal/rng"
	"slimgraph/internal/succinct"
	"slimgraph/internal/traverse"
	"slimgraph/internal/triangles"
)

func benchConfig() experiments.Config {
	return experiments.Config{Scale: 0, Seed: 1, Workers: 0}
}

func runTable(b *testing.B, f func(experiments.Config) *experiments.Table) {
	b.Helper()
	cfg := benchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := f(cfg)
		tab.Fprint(io.Discard)
	}
}

func BenchmarkTable2_RemainingEdges(b *testing.B) { runTable(b, experiments.Table2) }
func BenchmarkTable3_Bounds(b *testing.B)         { runTable(b, experiments.Table3) }
func BenchmarkFigure5_Tradeoffs(b *testing.B)     { runTable(b, experiments.Figure5) }
func BenchmarkFigure6_Spectral(b *testing.B)      { runTable(b, experiments.Figure6Spectral) }
func BenchmarkFigure6_TR(b *testing.B)            { runTable(b, experiments.Figure6TR) }
func BenchmarkTable5_KLDivergence(b *testing.B)   { runTable(b, experiments.Table5) }
func BenchmarkTable6_Triangles(b *testing.B)      { runTable(b, experiments.Table6) }
func BenchmarkBFSCriticalEdges(b *testing.B)      { runTable(b, experiments.BFSCritical) }
func BenchmarkReorderedPairs(b *testing.B)        { runTable(b, experiments.ReorderedPairs) }
func BenchmarkFigure7_DegreeDist(b *testing.B)    { runTable(b, experiments.Figure7) }
func BenchmarkFigure8_Distributed(b *testing.B)   { runTable(b, experiments.Figure8) }
func BenchmarkWeightedTR(b *testing.B)            { runTable(b, experiments.WeightedTR) }
func BenchmarkCompressionTiming(b *testing.B)     { runTable(b, experiments.Timing) }
func BenchmarkLowRankBaseline(b *testing.B)       { runTable(b, experiments.LowRank) }
func BenchmarkCutPreservation(b *testing.B)       { runTable(b, experiments.CutPreservation) }
func BenchmarkPackedKernelsTable(b *testing.B)    { runTable(b, experiments.PackedKernels) }
func BenchmarkAblationEO(b *testing.B)            { runTable(b, experiments.AblationEO) }
func BenchmarkAblationSpanner(b *testing.B)       { runTable(b, experiments.AblationSpanner) }
func BenchmarkAblationUpsilon(b *testing.B)       { runTable(b, experiments.AblationUpsilon) }

// Construction-core benchmarks: the rebuild-free CSR paths against the
// serial sort-based reference they replaced, on a Graph500-parameter R-MAT
// graph (n = 2^17 = 131072, m ≈ 1.9M). The parallel paths scale with
// GOMAXPROCS — run with -cpu=1,2,4,... to see worker scaling; -cpu=1 gives
// the single-threaded comparison of BENCH_pr2.json. ReferenceBuild is
// pinned to the seed's serial implementation, so these benchmarks keep
// measuring the same baseline as the code evolves.

var (
	coreGraphOnce sync.Once
	coreGraph     *graph.Graph
	coreKeep      *graph.EdgeSet
)

func coreBenchGraph(b *testing.B) (*graph.Graph, *graph.EdgeSet) {
	b.Helper()
	coreGraphOnce.Do(func() {
		coreGraph = gen.RMAT(17, 16, 0.57, 0.19, 0.19, 77)
		coreKeep = graph.NewEdgeSet(coreGraph.M())
		// Deterministic 75%-keep mark set standing in for a stage-1 kernel.
		coreKeep.AddBatch(1, func(e graph.EdgeID) bool { return e%4 != 0 })
	})
	return coreGraph, coreKeep
}

func BenchmarkBuild(b *testing.B) {
	g, _ := coreBenchGraph(b)
	// Arbitrary-order input (generator/ingest workload): a deterministic
	// shuffle of the canonical list.
	shuffled := g.Edges()
	r := rng.New(99)
	r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	sorted := g.Edges()
	b.Run("reference-sort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			graph.ReferenceBuild(g.N(), false, false, shuffled)
		}
	})
	b.Run("counting", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			slimgraph.FromEdges(g.N(), false, shuffled)
		}
	})
	b.Run("counting-presorted", func(b *testing.B) {
		// Already-sorted input skips the sort step entirely.
		for i := 0; i < b.N; i++ {
			slimgraph.FromEdges(g.N(), false, sorted)
		}
	})
}

func BenchmarkFilterEdges(b *testing.B) {
	g, keep := coreBenchGraph(b)
	b.Run("rebuild", func(b *testing.B) {
		// The old path: materialize the surviving []Edge, then the full
		// sort-based reconstruction.
		for i := 0; i < b.N; i++ {
			kept := make([]graph.Edge, 0, g.M())
			for e := 0; e < g.M(); e++ {
				if keep.Contains(graph.EdgeID(e)) {
					u, v := g.EdgeEndpoints(graph.EdgeID(e))
					kept = append(kept, graph.Edge{U: u, V: v, W: 1})
				}
			}
			graph.ReferenceBuild(g.N(), false, false, kept)
		}
	})
	b.Run("direct", func(b *testing.B) {
		// The rebuild-free path the engine's Materialize takes: stream the
		// CSR through the kept-edge bitset.
		for i := 0; i < b.N; i++ {
			g.FilterEdgeSet(keep, nil)
		}
	})
	b.Run("direct-pred", func(b *testing.B) {
		// Same, but materializing the mark set from a predicate first
		// (the FilterEdges closure API).
		for i := 0; i < b.N; i++ {
			g.FilterEdges(func(e graph.EdgeID) bool { return e%4 != 0 }, nil)
		}
	})
}

// Storage-subsystem benchmarks on the same R-MAT graph: succinct encode
// paths and BFS traversing the packed form in place against the raw CSR.
// The PR 3 acceptance bar (BENCH_pr3.json) is packed BFS within 4x of raw.

func BenchmarkEncode(b *testing.B) {
	g, _ := coreBenchGraph(b)
	b.Run("pack", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			succinct.Pack(g, 0)
		}
	})
	b.Run("write-packed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := graphio.WritePacked(io.Discard, g); err != nil {
				b.Fatal(err)
			}
		}
	})
	var snapshot bytes.Buffer
	if _, err := graphio.WritePacked(&snapshot, g); err != nil {
		b.Fatal(err)
	}
	b.Run("read-packed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := graphio.ReadPacked(bytes.NewReader(snapshot.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("write-binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := graphio.WriteBinary(io.Discard, g); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkPackedBFS(b *testing.B) {
	g, _ := coreBenchGraph(b)
	pg := succinct.Pack(g, 0)
	b.Run("raw-csr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			traverse.BFS(g, 0, 0)
		}
	})
	b.Run("packed", func(b *testing.B) {
		// Decode-on-the-fly traversal of the packed form; the acceptance
		// bar is within 4x of raw-csr above.
		for i := 0; i < b.N; i++ {
			traverse.BFSOn(pg, 0, 0)
		}
	})
}

// PR 7 pairs: relabel-on-pack orderings and packed-form kernel execution
// against their raw-CSR twins on the same R-MAT graph. The acceptance bar
// (BENCH_pr7.json) is packed triangle Count within 2x of the raw engine.

func BenchmarkOrderedPack(b *testing.B) {
	g, _ := coreBenchGraph(b)
	orders := []succinct.Order{
		succinct.OrderNone, succinct.OrderDegree, succinct.OrderBFS, succinct.OrderWindow,
	}
	for _, o := range orders {
		b.Run(o.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				succinct.Pack(g, 0, succinct.WithOrder(o))
			}
		})
	}
}

func BenchmarkPackedTriangles(b *testing.B) {
	g, _ := coreBenchGraph(b)
	pg := succinct.Pack(g, 0)
	b.Run("raw-csr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			triangles.Count(g, 0)
		}
	})
	b.Run("packed", func(b *testing.B) {
		// Engine build from the packed canonical edge columns + count.
		for i := 0; i < b.N; i++ {
			triangles.CountOn(pg, 0)
		}
	})
	en := triangles.NewEngineOn(pg, 0)
	b.Run("packed-prebuilt", func(b *testing.B) {
		// The server's steady state: the per-entry engine arena is built
		// once, queries only enumerate.
		for i := 0; i < b.N; i++ {
			en.Count()
		}
	})
}

func BenchmarkPackedDegrees(b *testing.B) {
	g, _ := coreBenchGraph(b)
	pg := succinct.Pack(g, 0)
	b.Run("raw-csr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			metrics.DegreeDistribution(g)
		}
	})
	b.Run("packed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			metrics.DegreeDistributionOn(pg)
		}
	})
}

// Micro-benchmarks of the public API on a fixed mid-size graph, for
// regression tracking of the kernels themselves.

func benchGraph(b *testing.B) *slimgraph.Graph {
	b.Helper()
	return slimgraph.GenerateRMAT(13, 8, 1)
}

func BenchmarkSchemeUniform(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slimgraph.Uniform(g, 0.5, uint64(i), 0)
	}
}

func BenchmarkSchemeSpectral(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slimgraph.SpectralSparsify(g, slimgraph.SpectralOptions{
			P: 1, Variant: slimgraph.UpsilonLogN, Seed: uint64(i)})
	}
}

func BenchmarkSchemeTREO(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slimgraph.TriangleReduction(g, slimgraph.TROptions{
			P: 0.5, Variant: slimgraph.TREO, Seed: uint64(i)})
	}
}

func BenchmarkSchemeSpanner(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slimgraph.Spanner(g, slimgraph.SpannerOptions{K: 8, Seed: uint64(i)})
	}
}

func BenchmarkAlgoPageRank(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slimgraph.PageRank(g, 0)
	}
}

func BenchmarkAlgoTriangleCount(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slimgraph.TriangleCount(g, 0)
	}
}

// Triangle-engine benchmarks on the same R-MAT graph: the rank-oriented
// forward-CSR engine against the preserved pre-engine path (full-adjacency
// merge scans, per-triangle atomics, edge-index chunking). The PR 4
// acceptance bar (BENCH_pr4.json) is engine Count >= 2x reference.

func BenchmarkTriangleCount(b *testing.B) {
	g, _ := coreBenchGraph(b)
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			triangles.ReferenceCount(g, 0)
		}
	})
	b.Run("engine", func(b *testing.B) {
		// Includes forward-CSR construction, like the wrapper callers pay.
		for i := 0; i < b.N; i++ {
			slimgraph.TriangleCount(g, 0)
		}
	})
	en := slimgraph.NewTriangleEngine(g, 0)
	b.Run("engine-prebuilt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			en.Count()
		}
	})
}

func BenchmarkTrianglePerEdge(b *testing.B) {
	g, _ := coreBenchGraph(b)
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			triangles.ReferencePerEdge(g, 0)
		}
	})
	b.Run("engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			slimgraph.TrianglesPerEdge(g, 0)
		}
	})
}

func BenchmarkTriangleKernel(b *testing.B) {
	g, _ := coreBenchGraph(b)
	// The basic p-1-TR kernel of Listing 1: sample, delete one edge u.a.r.
	kernel := func(sg *core.SG, r *rng.Rand, t core.TriangleView) {
		if r.Float64() < 0.5 {
			sg.Del(t.E[r.Intn(3)])
		}
	}
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.New(g, 1, 0).ReferenceRunTriangleKernel(kernel)
		}
	})
	b.Run("engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.New(g, 1, 0).RunTriangleKernel(kernel)
		}
	})
}
