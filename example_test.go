package slimgraph_test

import (
	"fmt"

	"slimgraph"
)

// The smallest complete pipeline: compress, process, evaluate. Results are
// deterministic for a fixed seed regardless of worker count.
func Example() {
	// A triangle with a tail: 0-1-2 closed, 2-3 pendant.
	g := slimgraph.FromEdges(4, false, []slimgraph.Edge{
		slimgraph.E(0, 1), slimgraph.E(1, 2), slimgraph.E(0, 2), slimgraph.E(2, 3),
	})
	// Triangle Reduction removes one edge of the (only) triangle and never
	// touches the tail.
	res := slimgraph.TriangleReduction(g, slimgraph.TROptions{
		P: 1, Variant: slimgraph.TRBasic, Seed: 7, Workers: 1,
	})
	fmt.Println("edges before:", g.M())
	fmt.Println("edges after: ", res.Output.M())
	fmt.Println("tail intact: ", res.Output.HasEdge(2, 3))
	fmt.Println("components:  ", slimgraph.ComponentCount(res.Output))
	// Output:
	// edges before: 4
	// edges after:  3
	// tail intact:  true
	// components:   1
}

// Writing a custom compression kernel with the programming model.
func ExampleNewSG() {
	g := slimgraph.FromEdges(5, false, []slimgraph.Edge{
		slimgraph.E(0, 1), slimgraph.E(1, 2), slimgraph.E(2, 3), slimgraph.E(3, 4),
	})
	sg := slimgraph.NewSG(g, 1, 1)
	// Deterministic kernel: delete every edge incident to vertex 2.
	sg.RunEdgeKernel(func(sg *slimgraph.SG, r *slimgraph.Rand, e slimgraph.EdgeView) {
		if e.U == 2 || e.V == 2 {
			sg.Del(e.ID)
		}
	})
	out := sg.Materialize()
	fmt.Println("m:", out.M())
	fmt.Println("components:", slimgraph.ComponentCount(out))
	// Output:
	// m: 2
	// components: 3
}

// Lossless summarization round-trips exactly; the summary stores fewer
// records than the graph has edges when structure repeats.
func ExampleSummarize() {
	g := slimgraph.FromEdges(6, false, []slimgraph.Edge{
		// K4 on {0,1,2,3} plus two pendant twins attached to 0 and 1.
		slimgraph.E(0, 1), slimgraph.E(0, 2), slimgraph.E(0, 3),
		slimgraph.E(1, 2), slimgraph.E(1, 3), slimgraph.E(2, 3),
		slimgraph.E(0, 4), slimgraph.E(1, 4),
		slimgraph.E(0, 5), slimgraph.E(1, 5),
	})
	s := slimgraph.Summarize(g, slimgraph.SummarizeOptions{Iterations: 6, Seed: 3, Workers: 1})
	fmt.Println("lossless decode matches:", s.Decode().M() == g.M())
	// Output:
	// lossless decode matches: true
}
