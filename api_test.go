package slimgraph_test

import (
	"bytes"
	"math"
	"os"
	"testing"

	"slimgraph"
)

// TestEndToEndPipeline exercises the full paper pipeline through the public
// API: generate, compress with several schemes, run stage-2 algorithms,
// evaluate with the accuracy metrics.
func TestEndToEndPipeline(t *testing.T) {
	g := slimgraph.GenerateRMAT(10, 8, 1)
	if g.N() != 1024 {
		t.Fatalf("n = %d", g.N())
	}
	origPR := slimgraph.PageRank(g, 0)
	origCC := slimgraph.ComponentCount(g)
	origT := slimgraph.TriangleCount(g, 0)

	uni := slimgraph.Uniform(g, 0.5, 7, 0)
	if uni.Output.M() >= g.M() {
		t.Fatal("uniform did not compress")
	}
	kl := slimgraph.KLDivergence(origPR, slimgraph.PageRank(uni.Output, 0))
	if kl <= 0 || math.IsInf(kl, 1) {
		t.Fatalf("KL = %v", kl)
	}

	eo := slimgraph.TriangleReduction(g, slimgraph.TROptions{P: 0.5, Variant: slimgraph.TREO, Seed: 7})
	if cc := slimgraph.ComponentCount(eo.Output); cc != origCC {
		t.Fatalf("EO TR changed #CC: %d -> %d", origCC, cc)
	}

	sp := slimgraph.Spanner(g, slimgraph.SpannerOptions{K: 8, Seed: 7})
	if cc := slimgraph.ComponentCount(sp.Output); cc != origCC {
		t.Fatalf("spanner changed #CC: %d -> %d", origCC, cc)
	}
	ret := slimgraph.BFSCriticalRetention(g, sp.Output, []slimgraph.NodeID{0, 100}, 0)
	if ret <= 0 || ret > 1 {
		t.Fatalf("retention %v", ret)
	}

	if newT := slimgraph.TriangleCount(uni.Output, 0); newT >= origT {
		t.Fatalf("uniform sampling did not reduce triangles: %d -> %d", origT, newT)
	}
}

func TestCustomKernelThroughPublicAPI(t *testing.T) {
	// The programming model: a custom edge kernel that removes edges
	// between two low-degree endpoints.
	g := slimgraph.GenerateBarabasiAlbert(2000, 3, 5)
	sg := slimgraph.NewSG(g, 42, 0)
	sg.RunEdgeKernel(func(sg *slimgraph.SG, r *slimgraph.Rand, e slimgraph.EdgeView) {
		if e.DegU+e.DegV < 8 && r.Float64() < 0.9 {
			sg.Del(e.ID)
		}
	})
	out := sg.Materialize()
	if out.M() >= g.M() {
		t.Fatal("custom kernel removed nothing")
	}
	// High-degree hub edges must be untouched.
	hubEdges := 0
	for e := 0; e < g.M(); e++ {
		u, v := g.EdgeEndpoints(slimgraph.EdgeID(e))
		if g.Degree(u)+g.Degree(v) >= 8 {
			hubEdges++
			if !out.HasEdge(u, v) {
				t.Fatal("kernel deleted an out-of-scope edge")
			}
		}
	}
	if hubEdges == 0 {
		t.Fatal("degenerate test graph")
	}
}

func TestSummarizeRoundTripPublicAPI(t *testing.T) {
	g := slimgraph.GenerateCommunities(300, 30, 0.7, 100, 3)
	s := slimgraph.Summarize(g, slimgraph.SummarizeOptions{Iterations: 6, Seed: 1})
	dec := s.Decode()
	if dec.M() != g.M() {
		t.Fatalf("lossless summary decode: m %d -> %d", g.M(), dec.M())
	}
	if s.CompressionRatio() >= 1 {
		t.Fatalf("no storage reduction: %v", s.CompressionRatio())
	}
}

func TestIORoundTripPublicAPI(t *testing.T) {
	g := slimgraph.WithUniformWeights(slimgraph.GenerateGrid(10, 10, true), 1, 9, 2)
	var buf bytes.Buffer
	n, err := slimgraph.WriteBinary(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if n != slimgraph.BinarySize(g) {
		t.Fatal("size mismatch")
	}
	h, err := slimgraph.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.M() != g.M() || h.TotalWeight() != g.TotalWeight() {
		t.Fatal("round trip mismatch")
	}
}

func TestWeightedPipelineMSTPreserved(t *testing.T) {
	g := slimgraph.WithUniformWeights(slimgraph.GenerateCommunities(200, 20, 0.6, 100, 4), 1, 50, 5)
	before := slimgraph.MSTWeight(g)
	res := slimgraph.TriangleReduction(g, slimgraph.TROptions{
		P: 1, Variant: slimgraph.TRMaxWeight, Seed: 6, Workers: 1})
	after := slimgraph.MSTWeight(res.Output)
	if math.Abs(before-after) > 1e-9 {
		t.Fatalf("MST weight %v -> %v", before, after)
	}
}

func TestAlgorithmSuiteSmoke(t *testing.T) {
	g := slimgraph.GenerateSmallWorld(500, 6, 0.1, 7)
	if d := slimgraph.Diameter(g, 0); d <= 0 {
		t.Fatalf("diameter %d", d)
	}
	dist, parents := slimgraph.Dijkstra(g, 0)
	if dist[0] != 0 || parents[0] != 0 {
		t.Fatal("Dijkstra root broken")
	}
	ds := slimgraph.DeltaStepping(g, 0, 0, 0)
	for v := range dist {
		if math.Abs(dist[v]-ds[v]) > 1e-9 {
			t.Fatalf("SSSP mismatch at %d", v)
		}
	}
	if c := slimgraph.ColoringNumber(g); c < 2 {
		t.Fatalf("coloring number %d", c)
	}
	if m := slimgraph.MatchingSize(g); m == 0 {
		t.Fatal("empty matching")
	}
	if s := slimgraph.IndependentSetSize(g); s == 0 {
		t.Fatal("empty independent set")
	}
	bc := slimgraph.Betweenness(g, 0)
	if len(bc) != g.N() {
		t.Fatal("bc length")
	}
	dd := slimgraph.DegreeDistribution(g)
	slope, _ := slimgraph.PowerLawSlope(dd)
	_ = slope
	labels := slimgraph.ConnectedComponents(g)
	if len(labels) != g.N() {
		t.Fatal("labels length")
	}
}

func TestDistributedPublicAPI(t *testing.T) {
	g := slimgraph.GenerateRMAT(10, 8, 9)
	engine := slimgraph.DistributedEngine{Ranks: 4, Seed: 1}
	run, err := engine.Compress(g, "uniform:p=0.5")
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(run.Output.M()) / float64(g.M())
	if math.Abs(ratio-0.5) > 0.05 {
		t.Fatalf("distributed ratio %v", ratio)
	}
	ranges := slimgraph.PartitionByDegree(g, 4)
	if len(ranges) != 4 || int(ranges[3].Hi) != g.N() {
		t.Fatalf("partition %+v", ranges)
	}
}

func TestReorderedPairsPublicAPI(t *testing.T) {
	g := slimgraph.GenerateRMAT(9, 8, 11)
	orig := slimgraph.PageRank(g, 0)
	comp := slimgraph.PageRank(slimgraph.Uniform(g, 0.5, 3, 0).Output, 0)
	frac := slimgraph.ReorderedPairs(orig, comp)
	if frac <= 0 || frac >= 0.5 {
		t.Fatalf("reordered fraction %v", frac)
	}
	nfrac := slimgraph.ReorderedNeighborPairs(g, orig, comp)
	if nfrac < 0 || nfrac > 1 {
		t.Fatalf("neighbor fraction %v", nfrac)
	}
	js := slimgraph.JensenShannon(orig, comp)
	if js <= 0 || js > 1 {
		t.Fatalf("JS %v", js)
	}
}

func TestTriangleEngineAPI(t *testing.T) {
	g := slimgraph.GenerateRMAT(9, 8, 7)
	en := slimgraph.NewTriangleEngine(g, 0)
	want := slimgraph.TriangleCount(g, 0)
	if got := en.Count(); got != want {
		t.Fatalf("engine Count = %d, wrapper %d", got, want)
	}
	pe := slimgraph.TrianglesPerEdge(g, 0)
	var sum int64
	for _, c := range pe {
		sum += c
	}
	if sum != 3*want {
		t.Fatalf("per-edge sum %d, want %d", sum, 3*want)
	}
	if got := slimgraph.TriangleCountApprox(g, 1, 1, 0); got != float64(want) {
		t.Fatalf("p=1 approx %v != exact %d", got, want)
	}
}

func TestServablePublicAPI(t *testing.T) {
	g := slimgraph.GenerateRMAT(9, 8, 5)
	pg := slimgraph.PackGraph(g, 0)

	var buf bytes.Buffer
	n, err := slimgraph.WriteServable(&buf, pg)
	if err != nil {
		t.Fatal(err)
	}
	if n != slimgraph.ServableSize(pg) || int64(buf.Len()) != n {
		t.Fatalf("wrote %d bytes, ServableSize %d, buffer %d", n, slimgraph.ServableSize(pg), buf.Len())
	}
	if !slimgraph.IsServable(buf.Bytes()) {
		t.Fatal("IsServable rejects a fresh image")
	}

	att, err := slimgraph.AttachServable(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if att.N() != g.N() || att.M() != g.M() {
		t.Fatalf("attached identity %d/%d, want %d/%d", att.N(), att.M(), g.N(), g.M())
	}
	if got, want := slimgraph.BFSOn(att, 0, 0), slimgraph.BFS(g, 0, 0); got.Reached() != want.Reached() {
		t.Fatalf("BFS over attached image reached %d, raw %d", got.Reached(), want.Reached())
	}

	path := t.TempDir() + "/g.sgp"
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	info, err := slimgraph.StatServable(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.N != g.N() || info.M != g.M() || info.Bytes != n {
		t.Fatalf("StatServable = %+v", info)
	}
	m, err := slimgraph.OpenServable(path)
	if err != nil {
		t.Fatal(err)
	}
	release, err := m.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != g.N() || m.M() != g.M() {
		t.Fatalf("mapped identity %d/%d, want %d/%d", m.N(), m.M(), g.N(), g.M())
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if m.Unmapped() {
		t.Fatal("unmapped while a reader held the mapping")
	}
	release()
	if !m.Unmapped() {
		t.Fatal("last release did not unmap")
	}
}
