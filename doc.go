// Package slimgraph is a practical lossy graph compression framework for
// approximate graph processing, storage, and analytics — a from-scratch Go
// reproduction of "Slim Graph: Practical Lossy Graph Compression for
// Approximate Graph Processing, Storage, and Analytics" (Besta et al.,
// SC 2019).
//
// The package exposes the three parts of the Slim Graph architecture:
//
//   - The programming model: compression kernels — small functions that
//     observe one vertex, edge, triangle, or subgraph and delete or
//     reweight elements — executed in parallel over the graph (NewSG and
//     the Run*Kernel methods), plus every built-in scheme of the paper:
//     uniform sampling, spectral sparsification, Triangle Reduction in six
//     variants, low-degree vertex removal, O(k)-spanners, and lossy
//     ε-summarization.
//
//   - The execution engine: compression runs as stage 1 (kernels mark
//     deletions atomically; Materialize rebuilds a compact CSR), and any
//     graph algorithm runs as stage 2 on the result. BFS, SSSP, PageRank,
//     betweenness centrality, connected components, triangle counting,
//     MST, coloring, matching, and independent sets are included.
//
//   - The analytics subsystem: Kullback–Leibler divergence for
//     distribution-valued outputs (PageRank), reordered-pair counts for
//     ranking-valued outputs (centralities), BFS critical-edge retention
//     for Graph500-style outputs, and degree-distribution comparisons.
//
// # Quick start
//
//	g := slimgraph.GenerateRMAT(14, 8, 1) // 16k vertices, ~130k edges
//	res := slimgraph.Uniform(g, 0.5, 1, 0)
//	fmt.Println(res)                       // edges before/after, timing
//	orig := slimgraph.PageRank(g, 0)
//	comp := slimgraph.PageRank(res.Output, 0)
//	fmt.Println(slimgraph.KLDivergence(orig, comp))
//
// All randomness is seed-deterministic and independent of the worker
// count. See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every table and figure.
package slimgraph
