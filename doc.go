// Package slimgraph is a practical lossy graph compression framework for
// approximate graph processing, storage, and analytics — a from-scratch Go
// reproduction of "Slim Graph: Practical Lossy Graph Compression for
// Approximate Graph Processing, Storage, and Analytics" (Besta et al.,
// SC 2019).
//
// # Schemes, the registry, and pipelines
//
// Every compression scheme is a Scheme: an immutable, configured value with
// a Name, a canonical parameter string, and Apply. Schemes are built three
// equivalent ways:
//
//   - By spec, through the registry: ParseScheme("uniform:p=0.5") or
//     ParseScheme("tr-eo:p=0.8|spanner:k=8") — the "|" chains stages into a
//     Pipeline, which is itself a Scheme.
//   - By constructor with functional options: NewSpanner(WithStretch(8),
//     WithSeed(1)), NewTR(WithTRVariant(TREO), WithProbability(0.8)), ...
//   - By name: NewScheme("cut", WithRho(3)).
//
// The registry (RegisterScheme, LookupScheme, SchemeNames) is the single
// dispatch point: both CLIs (cmd/slimgraph, cmd/slimbench) and the whole
// experiment harness resolve schemes through it, so registering a new
// scheme makes it addressable everywhere — specs, pipelines, sweeps, and
// batch comparisons — with no call-site edits. SchemeSpec returns the spec
// that ParseScheme round-trips.
//
// The built-in registry covers the paper's Table 2 and extensions: uniform
// and vertex sampling, spectral sparsification (log n and average-degree Υ),
// the Triangle Reduction family (basic, Edge-Once, Count-Triangles,
// max-weight, collapse, EO-redirect), low-degree removal (single pass and
// fixpoint), O(k)-spanners, Benczúr–Karger cut sparsification, and lossy
// ε-summarization.
//
// # Architecture
//
// Underneath the Scheme surface sit the three parts of the Slim Graph
// design:
//
//   - The programming model: compression kernels — small functions that
//     observe one vertex, edge, triangle, or subgraph and delete or
//     reweight elements — executed in parallel over the graph (NewSG and
//     the Run*Kernel methods). Custom kernels become first-class schemes by
//     wrapping them in a Scheme and calling RegisterScheme.
//
//   - The execution engine: compression runs as stage 1 (kernels mark
//     deletions atomically; Materialize rebuilds a compact CSR), and any
//     graph algorithm runs as stage 2 on the result. BFS, SSSP, PageRank,
//     betweenness centrality, connected components, triangle counting,
//     MST, coloring, matching, and independent sets are included.
//
//   - The analytics subsystem: Kullback–Leibler divergence for
//     distribution-valued outputs (PageRank), reordered-pair counts for
//     ranking-valued outputs (centralities), BFS critical-edge retention
//     for Graph500-style outputs, and degree-distribution comparisons.
//
// # Storage
//
// The storage pillar composes the lossy schemes with a succinct lossless
// representation (internal/succinct). Three on-disk formats exist: text
// edge lists (WriteEdgeList), the v1 fixed-width binary snapshot
// (WriteBinary), and the v2 packed snapshot (WritePacked) — gap-encoded
// canonical adjacency behind a block directory, typically 3-5x smaller
// than v1. ReadSnapshot dispatches on the version tag. In memory,
// PackGraph produces a PackedGraph, a blocked bit-packed CSR that BFSOn
// and PageRankOn traverse in place, decoding neighbors on the fly at a
// small constant-factor slowdown; Unpack restores a bit-identical Graph.
// Result.ComputeStorage reports both footprints and the combined
// lossy-times-lossless reduction after any compression run.
//
// Packing optionally applies a gap-minimizing locality ordering first:
// PackGraphOrdered and WritePackedOrder relabel vertices by degree, BFS
// discovery order, or a window-refined BFS order (Order, ParseOrder,
// ComputeOrder) before encoding, shrinking the gap payload — 1.12x fewer
// payload bits per edge under OrderDegree on the benchmark R-MAT graph.
// The permutation rides in the snapshot and in PackedGraph (Perm,
// OriginalID, PackedID), so every round trip restores original IDs
// losslessly; a stored permutation that is not a bijection is rejected at
// decode. GapHistogram measures the encoded gap-width distribution a
// relabel shrinks, and the lossless "relabel:order=..." scheme composes
// an ordering into any compression pipeline.
//
// The servable image (WriteServable) is the packed form laid out for
// zero-copy serving: a fixed header plus 8-byte-aligned sections sized
// exactly by the header, so AttachServable overlays a PackedGraph on the
// raw bytes without a decode pass — and without copying any section on
// little-endian hosts. OpenServable memory-maps a servable file
// (MmapSupported reports the mechanism; off linux the image is read into
// the heap behind the identical API), returning a reference-counted
// MappedGraph whose munmap waits for the last Acquire holder.
// StatServable reads only the header, validating the file size against
// it, which is how a catalog registers snapshots at restart without
// touching their payloads.
//
// # Serving
//
// The serving layer (internal/server, run as cmd/slimgraphd or embedded
// via NewServer) turns the pipeline into a long-lived HTTP/JSON service: a
// catalog of named resident graphs — uploaded in any format or generated
// on demand, kept raw or packed per a memory policy — and query endpoints
// (BFS distances, PageRank top-k, exact or DOULION-approximate triangle
// counts, degree distributions, and CompareGraphs quality reports) over
// the original or any compressed variant. Variants live in an LRU cache
// keyed by (graph, canonical spec, seed, worker budget) with single-flight
// deduplication:
// concurrent identical compress requests execute the scheme exactly once,
// and failures are never cached. Requests default to a one-worker budget,
// making responses byte-identical for a fixed seed.
//
// Packed-resident graphs serve every query on the packed form in place:
// BFS, PageRank, triangles, degrees, and the original side of compare all
// consume the PackedGraph's adjacency views directly, the oriented
// triangle engine is built lazily once per catalog entry and reused
// across queries, and Unpack is reachable only from variant computation.
// Answers are byte-identical to a raw-resident catalog; the guarantee is
// pinned by a test that fails on any Unpack during query serving.
//
// With a data directory (slimgraphd -data-dir, ServerOptions.DataDir) the
// catalog is a two-tier store. Graphs persist as servable snapshots on
// create (temp file, fsync, rename — crashes never leave a torn snapshot
// under a final name), and a restart re-attaches every snapshot
// memory-mapped: no decode pass, no payload heap copy, first answers
// byte-identical to the previous process. A heap budget (-mem-budget,
// ServerOptions.MemBudget) spills least-recently-used graphs — and
// LRU-evicted cache variants — to the same directory, after which they
// serve mapped (graphs) or fault back in from disk instead of recomputing
// (variants). DELETE removes the snapshot and defers the munmap until
// in-flight queries drain. Residency (raw, packed, mapped, cold) shows
// per graph on the catalog endpoints, with tier counters on /v1/stats
// and slimgraph_catalog_tier_* metrics.
//
// # Cluster
//
// The same API scales out (internal/cluster, run as slimgraphd -role
// coordinator|shard or in-process via NewLocalCluster): a coordinator
// serves /v1/graphs by scatter/gathering partial computations — BFS
// frontier expansions, PageRank pull sums, degree histograms, forward
// triangle counts — over N shard replicas, splitting work by the same
// degree-balanced contiguous ranges as PartitionByDegree. Storage is
// replicated, compute is partitioned: that keeps the determinism contract
// intact (element-keyed scheme randomness needs the whole graph), so a
// cluster's responses are byte-identical to a single node's for a fixed
// seed at workers=1, and one compress request populates every replica's
// variant cache exactly once.
//
// # Resilience
//
// The fault-tolerance layer (internal/resilience) keeps that contract
// intact when shards misbehave. Idempotent sub-requests retry with
// exponential backoff and deterministic seeded jitter under a per-request
// retry budget (RetryPolicy; creates and purges never blind-retry), and
// per-shard circuit breakers (BreakerState; closed → open after
// consecutive failures, half-open probes after a cooldown) route traffic
// around a dead shard — opened proactively by a background /readyz prober
// when ClusterOptions.ProbeInterval is set. Degraded execution is
// lossless: relay queries fail over to any live replica, partitioned
// kernels re-scatter their ranges over the survivors (ranges are pure
// functions of (part, of), so the merged bytes never change), and compress
// falls back to a quorum write, queueing the missed replica a repair that
// replays when its breaker closes — the same queue that replays unloads
// and purges so DELETE stays idempotent across an outage. Request
// deadlines propagate on the DeadlineHeader and are clamped shard-side;
// handler panics become 500s with the request ID (slimgraph_panics_total)
// instead of torn connections; and admission control bounds the
// heavy-request wait queue, answering 429 + Retry-After when full. A
// deterministic fault injector (NewFaultInjector, ParseFaultSpec,
// slimgraphd -fault-inject) drops, delays, 503s, or truncates matching
// requests reproducibly from a seed — the chaos harness the kill-a-shard
// tests drive.
//
// # Observability
//
// Servers are instrumented end to end with a dependency-free metrics
// registry (NewMetricsRegistry; share one via ServerOptions.Registry):
// GET /metrics serves Prometheus text exposition with per-endpoint
// latency histograms, variant-cache counters, catalog residency gauges,
// per-scheme compression timing, and — on a coordinator — per-shard
// sub-request histograms whose mergeable snapshots (HistogramSnapshot)
// sum to exactly the cluster aggregate. Every request carries an
// X-Slimgraph-Request ID (RequestIDHeader), forwarded on shard
// sub-requests so one ID stitches a scatter/gather together, and emits
// one structured log line through ServerOptions.Logger
// (NewTextRequestLogger for key=value output). slimgraphd's -debug-addr
// adds a pprof listener; /v1/stats reports uptime and build info
// (ServerBuildInfo).
//
// # Quick start
//
//	g := slimgraph.GenerateRMAT(14, 8, 1) // 16k vertices, ~130k edges
//	s, _ := slimgraph.ParseScheme("tr-eo:p=0.8|spanner:k=8", slimgraph.WithSeed(1))
//	res, _ := s.Apply(g)
//	fmt.Println(res)                      // edges before/after, timing
//	orig := slimgraph.PageRank(g, 0)
//	comp := slimgraph.PageRank(res.Output, 0)
//	fmt.Println(slimgraph.KLDivergence(orig, comp))
//
// All randomness is seed-deterministic and independent of the worker
// count; a Result records the compressed graph, timing, vertex remapping,
// and (for pipelines) the per-stage Results. See DESIGN.md for the system
// inventory and EXPERIMENTS.md for the paper-vs-measured record of every
// table and figure.
package slimgraph
