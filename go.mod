module slimgraph

go 1.24
