package slimgraph_test

import (
	"testing"

	"slimgraph"
)

// Degenerate inputs must flow through every scheme and algorithm without
// panics and with sensible results — compression pipelines meet empty
// partitions and isolated remnants all the time.

func edgeless(n int) *slimgraph.Graph { return slimgraph.FromEdges(n, false, nil) }

func TestSchemesOnEdgelessGraph(t *testing.T) {
	g := edgeless(50)
	if res := slimgraph.Uniform(g, 0.5, 1, 2); res.Output.M() != 0 || res.Output.N() != 50 {
		t.Fatal("uniform broke an edgeless graph")
	}
	if res := slimgraph.TriangleReduction(g, slimgraph.TROptions{P: 1, Variant: slimgraph.TREO, Seed: 1}); res.Output.M() != 0 {
		t.Fatal("TR broke an edgeless graph")
	}
	if res := slimgraph.Spanner(g, slimgraph.SpannerOptions{K: 4, Seed: 1}); res.Output.N() != 50 {
		t.Fatal("spanner broke an edgeless graph")
	}
	if res := slimgraph.RemoveLowDegree(g, 2); res.Output.N() != 50 {
		t.Fatal("lowdeg broke an edgeless graph")
	}
	if res := slimgraph.CutSparsify(g, 0, 1, 2); res.Output.M() != 0 {
		t.Fatal("cut sparsifier broke an edgeless graph")
	}
	s := slimgraph.Summarize(g, slimgraph.SummarizeOptions{Iterations: 3, Seed: 1})
	if s.Decode().M() != 0 {
		t.Fatal("summary of edgeless graph decodes edges")
	}
}

func TestSchemesOnSingleEdge(t *testing.T) {
	g := slimgraph.FromEdges(2, false, []slimgraph.Edge{slimgraph.E(0, 1)})
	if res := slimgraph.Uniform(g, 1, 1, 1); res.Output.M() != 1 {
		t.Fatal("keep-all dropped the only edge")
	}
	if res := slimgraph.TriangleReduction(g, slimgraph.TROptions{P: 1, Variant: slimgraph.TRBasic, Seed: 1}); res.Output.M() != 1 {
		t.Fatal("TR removed a non-triangle edge")
	}
	if res := slimgraph.Spanner(g, slimgraph.SpannerOptions{K: 2, Seed: 1}); res.Output.M() != 1 {
		t.Fatal("spanner dropped a forest edge")
	}
}

func TestAlgorithmsOnTinyGraphs(t *testing.T) {
	single := edgeless(1)
	if res := slimgraph.BFS(single, 0, 1); res.Reached() != 1 || res.Ecc() != 0 {
		t.Fatal("BFS on K1")
	}
	if pr := slimgraph.PageRank(single, 1); len(pr) != 1 || pr[0] != 1 {
		t.Fatalf("PageRank on K1: %v", pr)
	}
	if c := slimgraph.TriangleCount(single, 1); c != 0 {
		t.Fatal("triangles on K1")
	}
	if slimgraph.ComponentCount(single) != 1 {
		t.Fatal("components on K1")
	}
	if slimgraph.MatchingSize(single) != 0 || slimgraph.IndependentSetSize(single) != 1 {
		t.Fatal("matching/MIS on K1")
	}
	if slimgraph.ColoringNumber(single) != 1 {
		t.Fatal("coloring on K1")
	}
	if slimgraph.MSTWeight(single) != 0 {
		t.Fatal("MST on K1")
	}
	if slimgraph.MinCut(single) != 0 {
		t.Fatal("min cut on K1")
	}
}

func TestMetricsDegenerate(t *testing.T) {
	if d := slimgraph.KLDivergence(nil, nil); d != 0 {
		t.Fatalf("KL of empty: %v", d)
	}
	if f := slimgraph.ReorderedPairs([]float64{1}, []float64{2}); f != 0 {
		t.Fatalf("single-element reordering: %v", f)
	}
	g := edgeless(3)
	if f := slimgraph.ReorderedNeighborPairs(g, []float64{1, 2, 3}, []float64{3, 2, 1}); f != 0 {
		t.Fatalf("neighbor pairs with no edges: %v", f)
	}
	dd := slimgraph.DegreeDistribution(g)
	if len(dd) != 1 || dd[0] != 1 {
		t.Fatalf("degree distribution of edgeless: %v", dd)
	}
}

func TestSummarizeStarAndClique(t *testing.T) {
	// Star: all leaves share the neighborhood {hub} — heavy merging.
	star := slimgraph.FromEdges(21, false, starEdges(21))
	s := slimgraph.Summarize(star, slimgraph.SummarizeOptions{Iterations: 6, Seed: 2})
	if s.Supervertices >= 21 {
		t.Fatalf("star summarization merged nothing: %d supervertices", s.Supervertices)
	}
	if dec := s.Decode(); dec.M() != star.M() {
		t.Fatalf("lossless star decode: %d vs %d", dec.M(), star.M())
	}
}

func starEdges(n int) []slimgraph.Edge {
	edges := make([]slimgraph.Edge, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, slimgraph.E(0, slimgraph.NodeID(v)))
	}
	return edges
}

func TestCompressionOfCompressed(t *testing.T) {
	// Stacking schemes (a realistic pipeline) must compose cleanly.
	g := slimgraph.GenerateCommunities(2000, 20, 0.5, 3000, 9)
	step1 := slimgraph.TriangleReduction(g, slimgraph.TROptions{P: 0.5, Variant: slimgraph.TREO, Seed: 1})
	step2 := slimgraph.SpectralSparsify(step1.Output, slimgraph.SpectralOptions{
		P: 2, Variant: slimgraph.UpsilonLogN, Seed: 2})
	step3 := slimgraph.Spanner(step2.Output, slimgraph.SpannerOptions{K: 4, Seed: 3})
	if step3.Output.M() >= g.M() {
		t.Fatal("stacked pipeline did not compress")
	}
	if step3.Output.N() != g.N() {
		t.Fatal("stacked pipeline changed the vertex set")
	}
	// Still a valid graph end to end.
	if err := step3.Output.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDirectedGraphPipeline(t *testing.T) {
	// Directed hyperlink-style graphs: PageRank respects direction; edge
	// schemes operate on the canonical (directed) edge list.
	d := slimgraph.FromEdges(4, true, []slimgraph.Edge{
		slimgraph.E(0, 1), slimgraph.E(1, 2), slimgraph.E(2, 3), slimgraph.E(3, 0),
		slimgraph.E(0, 2),
	})
	pr := slimgraph.PageRank(d, 1)
	sum := 0.0
	for _, r := range pr {
		sum += r
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("directed PageRank sums to %v", sum)
	}
	res := slimgraph.Uniform(d, 0.6, 1, 1)
	if !res.Output.Directed() {
		t.Fatal("uniform sampling lost directedness")
	}
}
