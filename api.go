package slimgraph

import (
	"io"

	"slimgraph/internal/centrality"
	"slimgraph/internal/cluster"
	"slimgraph/internal/coloring"
	"slimgraph/internal/components"
	"slimgraph/internal/core"
	"slimgraph/internal/distributed"
	"slimgraph/internal/gen"
	"slimgraph/internal/graph"
	"slimgraph/internal/graphio"
	"slimgraph/internal/matching"
	"slimgraph/internal/metrics"
	"slimgraph/internal/mincut"
	"slimgraph/internal/mis"
	"slimgraph/internal/mst"
	"slimgraph/internal/obs"
	"slimgraph/internal/resilience"
	"slimgraph/internal/rng"
	"slimgraph/internal/schemes"
	"slimgraph/internal/server"
	"slimgraph/internal/succinct"
	"slimgraph/internal/summarize"
	"slimgraph/internal/traverse"
	"slimgraph/internal/triangles"
)

// Graph is the CSR graph all of Slim Graph operates on. Vertices are
// numbered [0, N); undirected edges carry one canonical EdgeID shared by
// both directions.
type Graph = graph.Graph

// NodeID identifies a vertex.
type NodeID = graph.NodeID

// EdgeID indexes the canonical edge list.
type EdgeID = graph.EdgeID

// Edge is a (U, V, W) triple for building and enumerating graphs.
type Edge = graph.Edge

// Builder accumulates edges and produces a Graph.
type Builder = graph.Builder

// NewBuilder returns a builder for a graph with n vertices.
func NewBuilder(n int, directed bool) *Builder { return graph.NewBuilder(n, directed) }

// FromEdges builds a graph from an edge slice (weights of 1 mean
// unweighted).
func FromEdges(n int, directed bool, edges []Edge) *Graph {
	return graph.FromEdges(n, directed, edges)
}

// FromWeightedEdges builds a weighted graph from an edge slice.
func FromWeightedEdges(n int, directed bool, edges []Edge) *Graph {
	return graph.FromWeightedEdges(n, directed, edges)
}

// FromCanonicalEdges builds a Graph from an already-canonical edge list
// (no self-loops, deduplicated, (U, V)-sorted, U <= V when undirected)
// through the sort-free construction path. It returns an error when the
// input is not canonical; use FromEdges for arbitrary input.
func FromCanonicalEdges(n int, directed, weighted bool, edges []Edge) (*Graph, error) {
	return graph.FromCanonicalEdges(n, directed, weighted, edges)
}

// EdgeSet is a dense set of canonical EdgeIDs — the stage-1 mark container
// of the compression engine. Kernels may Add concurrently; FilterEdgeSet
// materializes the members through the direct CSR→CSR transform.
type EdgeSet = graph.EdgeSet

// NewEdgeSet returns an empty EdgeSet over the universe [0, m).
func NewEdgeSet(m int) *EdgeSet { return graph.NewEdgeSet(m) }

// E constructs an unweighted edge; WE a weighted one.
func E(u, v NodeID) Edge             { return graph.E(u, v) }
func WE(u, v NodeID, w float64) Edge { return graph.WE(u, v, w) }

// ReadEdgeList parses a text edge list ("u v" or "u v w" per line, # and %
// comments; a "# Nodes: N" header raises the vertex count).
func ReadEdgeList(r io.Reader, directed bool) (*Graph, error) {
	return graphio.ReadEdgeList(r, directed)
}

// ReadEdgeListN is ReadEdgeList with an explicit vertex count: the graph
// has exactly n vertices and endpoints >= n are an error (n <= 0 infers).
func ReadEdgeListN(r io.Reader, directed bool, n int) (*Graph, error) {
	return graphio.ReadEdgeListN(r, directed, n)
}

// WriteEdgeList writes the canonical edge list as text.
func WriteEdgeList(w io.Writer, g *Graph) error { return graphio.WriteEdgeList(w, g) }

// WriteBinary writes the v1 binary snapshot (fixed-width canonical edge
// list) and returns its size in bytes — the uncompressed on-disk footprint
// the storage analyses compare against.
func WriteBinary(w io.Writer, g *Graph) (int64, error) { return graphio.WriteBinary(w, g) }

// ReadBinary reads a v1 snapshot written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) { return graphio.ReadBinary(r) }

// BinarySize returns the v1 snapshot size without retaining output (the
// write path runs against a discarding writer, so it can never drift).
func BinarySize(g *Graph) int64 { return graphio.BinarySize(g) }

// WritePacked writes the v2 packed snapshot — gap-encoded canonical lists
// with a block directory (internal/succinct), typically 3-4x smaller than
// WriteBinary — and returns its size in bytes.
func WritePacked(w io.Writer, g *Graph) (int64, error) { return graphio.WritePacked(w, g) }

// ReadPacked reads a v2 snapshot written by WritePacked (lossless:
// graph.Equal to what was written).
func ReadPacked(r io.Reader) (*Graph, error) { return graphio.ReadPacked(r) }

// PackedSize returns the v2 snapshot size without retaining output.
func PackedSize(g *Graph) int64 { return graphio.PackedSize(g) }

// ReadSnapshot reads a binary snapshot of either version, dispatching on
// the header tag.
func ReadSnapshot(r io.Reader) (*Graph, error) { return graphio.Read(r) }

// ReadGraph reads a graph of unknown format: binary snapshots (v1 or v2)
// are recognized by their magic, anything else parses as a text edge list
// (directed applies only to that case). It is the sniffing behind the
// slimgraph CLI's -input and the server's graph uploads.
func ReadGraph(r io.Reader, directed bool) (*Graph, error) {
	return graphio.ReadAuto(r, directed)
}

// IsSnapshot reports whether a file beginning with prefix (>= 4 bytes) is a
// binary snapshot of either version.
func IsSnapshot(prefix []byte) bool { return graphio.SniffSnapshot(prefix) }

// Succinct in-memory storage: the blocked, bit-packed CSR of
// internal/succinct, traversed in place by BFSOn/PageRankOn.

// PackedGraph is the succinct in-memory form: gap-encoded adjacency behind
// a two-level offset directory, decoded on the fly by its accessors.
type PackedGraph = succinct.PackedGraph

// PackedStats breaks down a PackedGraph's footprint.
type PackedStats = succinct.Stats

// PackGraph encodes g into its succinct form. Deterministic: identical
// bytes for every worker count (workers <= 0 means all CPUs). Unpack
// restores a graph.Equal copy.
func PackGraph(g *Graph, workers int) *PackedGraph { return succinct.Pack(g, workers) }

// Order selects the locality-ordering a pack relabels vertices by: OrderNone
// keeps original IDs; OrderDegree, OrderBFS, and OrderWindow compute
// gap-minimizing permutations of increasing effort. Ordered packs record the
// permutation, so Unpack and the snapshot round trip restore original IDs.
type Order = succinct.Order

// Locality orderings for PackGraphOrdered and WritePackedOrder.
const (
	OrderNone   = succinct.OrderNone
	OrderDegree = succinct.OrderDegree
	OrderBFS    = succinct.OrderBFS
	OrderWindow = succinct.OrderWindow
)

// ParseOrder maps an ordering name (none, degree, bfs, window;
// case-insensitive) to its Order.
func ParseOrder(s string) (Order, error) { return succinct.ParseOrder(s) }

// PackGraphOrdered is PackGraph under a locality ordering: vertices are
// relabeled by the computed permutation during the encode, shrinking the
// gap-encoded payload; accessors expose the relabeled space, OriginalID and
// Unpack translate back.
func PackGraphOrdered(g *Graph, order Order, workers int) *PackedGraph {
	return succinct.Pack(g, workers, succinct.WithOrder(order))
}

// ComputeOrder returns the permutation (perm[old] = new) of the given
// ordering, or nil for OrderNone. Deterministic for any worker count.
func ComputeOrder(g *Graph, order Order, workers int) []NodeID {
	return succinct.ComputeOrder(g, order, workers)
}

// GapHist is the distribution of encoded gap widths of a graph's adjacency
// payload under a permutation — the quantity a locality ordering shrinks.
type GapHist = succinct.GapHist

// GapHistogram measures g's gap stream under perm (nil = identity) without
// building a payload: encoded-value widths plus the exact payload byte size.
func GapHistogram(g *Graph, perm []NodeID, workers int) GapHist {
	return succinct.GapHistogram(g, perm, workers)
}

// WritePackedOrder is WritePacked under a locality ordering: the snapshot
// stores the relabeled payload plus the permutation, and reading restores
// the graph with original IDs (lossless for every ordering).
func WritePackedOrder(w io.Writer, g *Graph, order Order) (int64, error) {
	return graphio.WritePackedOrder(w, g, order)
}

// Servable images: the v2.1 snapshot layout whose sections are 8-byte
// aligned so a PackedGraph attaches over the raw bytes in place — the
// serving form behind slimgraphd's -data-dir tier. Write once, then open
// memory-mapped in milliseconds with no decode pass and no heap copy.

// MappedGraph is a PackedGraph attached over a memory-mapped servable
// image: backing bytes live in the page cache, not the Go heap. Lifetime is
// reference counted — readers bracket use with Acquire, and Close defers
// the munmap until the last reader drains.
type MappedGraph = succinct.Mapped

// ServableInfo is the identity a servable header carries (vertices, edges,
// directedness, weights, ordering, exact image size) — enough to register a
// catalog entry without mapping or decoding anything.
type ServableInfo = succinct.ServableInfo

// MmapSupported reports whether OpenServable maps files with mmap on this
// platform. When false it falls back to reading the image into the heap;
// every API behaves identically either way.
const MmapSupported = succinct.MmapSupported

// WriteServable writes g's packed form as a servable image. The inverse is
// OpenServable (from a file) or AttachServable (from bytes already in
// memory).
func WriteServable(w io.Writer, pg *PackedGraph) (int64, error) {
	return succinct.WriteServable(w, pg)
}

// ServableSize returns the exact image size WriteServable will produce for
// pg — useful for preallocating or budgeting before a write.
func ServableSize(pg *PackedGraph) int64 { return succinct.ServableSize(pg) }

// OpenServable maps the servable image at path and attaches a PackedGraph
// over it: zero decode pass, and on platforms with MmapSupported zero heap
// copy. Close the returned graph when done; in-flight Acquire holders keep
// the mapping alive until they release.
func OpenServable(path string) (*MappedGraph, error) { return succinct.OpenPacked(path) }

// StatServable reads only the fixed header of the servable image at path.
// The file size is validated against the size the header implies, so a
// truncated image is rejected here rather than at query time.
func StatServable(path string) (ServableInfo, error) { return succinct.StatServable(path) }

// AttachServable attaches a PackedGraph over a servable image already in
// memory — an mmap window the caller manages, or a snapshot body shipped
// over the network. Zero-copy on little-endian hosts; the caller must keep
// data alive and unmodified for the life of the graph.
func AttachServable(data []byte) (*PackedGraph, error) { return succinct.AttachServable(data) }

// IsServable reports whether prefix begins a servable image (as opposed to
// the v1/v2.0 wire snapshots ReadSnapshot decodes).
func IsServable(prefix []byte) bool { return succinct.IsServable(prefix) }

// Adjacency is the neighborhood view shared by *Graph and *PackedGraph;
// algorithms written against it traverse either representation.
type Adjacency = graph.Adjacency

// AdjacencyEdges extends Adjacency with canonical-edge enumeration — the
// view the packed-form kernels (triangles, degrees, compare, MST) consume,
// implemented by *Graph and *PackedGraph alike.
type AdjacencyEdges = graph.AdjacencyEdges

// Generators (deterministic per seed). See internal/gen for the analog
// mapping to the paper's datasets.

// GenerateRMAT returns an undirected R-MAT graph with 2^scale vertices and
// about edgeFactor*2^scale edges (Graph500 partition probabilities).
func GenerateRMAT(scale, edgeFactor int, seed uint64) *Graph {
	return gen.RMAT(scale, edgeFactor, 0.57, 0.19, 0.19, seed)
}

// GenerateErdosRenyi returns a G(n, m)-style random graph.
func GenerateErdosRenyi(n, m int, seed uint64) *Graph { return gen.ErdosRenyi(n, m, seed) }

// GenerateBarabasiAlbert returns a preferential-attachment graph.
func GenerateBarabasiAlbert(n, k int, seed uint64) *Graph { return gen.BarabasiAlbert(n, k, seed) }

// GenerateGrid returns a rows x cols road-like grid, optionally with
// diagonals (which introduce triangles).
func GenerateGrid(rows, cols int, diagonal bool) *Graph { return gen.Grid2D(rows, cols, diagonal) }

// GenerateCommunities returns a planted-partition graph: dense communities
// of communitySize plus random inter-community edges (high triangle
// density).
func GenerateCommunities(n, communitySize int, pIn float64, interEdges int, seed uint64) *Graph {
	return gen.PlantedPartition(n, communitySize, pIn, interEdges, seed)
}

// GenerateSmallWorld returns a Watts–Strogatz graph.
func GenerateSmallWorld(n, k int, beta float64, seed uint64) *Graph {
	return gen.WattsStrogatz(n, k, beta, seed)
}

// WithUniformWeights returns a weighted copy with per-edge uniform weights
// in [lo, hi).
func WithUniformWeights(g *Graph, lo, hi float64, seed uint64) *Graph {
	return gen.WithUniformWeights(g, lo, hi, seed)
}

// Compression schemes (Table 2 of the paper). All are deterministic per
// seed and independent of the worker count (workers <= 0 means all CPUs).
//
// The primary surface is the Scheme interface plus the registry: build
// schemes with ParseScheme ("uniform:p=0.5", "tr-eo:p=0.8|spanner:k=8") or
// the New* constructors with functional options, then Apply them to any
// graph. The free functions further down are the original flat API, kept as
// thin wrappers.

// Result is the outcome of one compression run.
type Result = schemes.Result

// StorageStats is the snapshot-footprint accounting of a run, filled by
// Result.ComputeStorage.
type StorageStats = schemes.StorageStats

// Scheme is a configured compression scheme; every registered scheme and
// every Pipeline implements it.
type Scheme = schemes.Scheme

// Pipeline chains schemes; it is itself a Scheme.
type Pipeline = schemes.Pipeline

// SchemeOption is a functional option for scheme constructors.
type SchemeOption = schemes.Option

// SchemeInfo describes one registry entry.
type SchemeInfo = schemes.Registration

// Functional options shared by the scheme constructors; see each
// internal/schemes option for semantics and which schemes accept it.

// WithSeed sets the random seed (every scheme is deterministic per seed).
func WithSeed(seed uint64) SchemeOption { return schemes.WithSeed(seed) }

// WithWorkers sets the parallelism (<= 0 means all CPUs).
func WithWorkers(workers int) SchemeOption { return schemes.WithWorkers(workers) }

// WithProbability sets the scheme's probability parameter p.
func WithProbability(p float64) SchemeOption { return schemes.WithProbability(p) }

// WithKeepProbability is WithProbability under the sampling schemes' name.
func WithKeepProbability(p float64) SchemeOption { return schemes.WithKeepProbability(p) }

// WithEdgesPerTriangle sets x for Triangle p-x-Reduction (1 or 2).
func WithEdgesPerTriangle(x int) SchemeOption { return schemes.WithEdgesPerTriangle(x) }

// WithTRVariant selects the Triangle Reduction flavor.
func WithTRVariant(v schemes.TRVariant) SchemeOption { return schemes.WithTRVariant(v) }

// WithUpsilonVariant selects how the spectral sparsifier's Υ scales.
func WithUpsilonVariant(v schemes.UpsilonVariant) SchemeOption {
	return schemes.WithUpsilonVariant(v)
}

// WithReweight keeps the spectral output unbiased (w(e)/p_e).
func WithReweight(on bool) SchemeOption { return schemes.WithReweight(on) }

// WithStretch sets the spanner stretch parameter k >= 1.
func WithStretch(k int) SchemeOption { return schemes.WithStretch(k) }

// WithInterClusterMode selects the spanner's inter-cluster edge rule.
func WithInterClusterMode(m schemes.InterClusterMode) SchemeOption {
	return schemes.WithInterClusterMode(m)
}

// WithEpsilon sets the summarization error budget.
func WithEpsilon(eps float64) SchemeOption { return schemes.WithEpsilon(eps) }

// WithIterations sets the summarization round count.
func WithIterations(n int) SchemeOption { return schemes.WithIterations(n) }

// WithRho sets the cut sparsifier's sampling density (<= 0 means auto).
func WithRho(rho float64) SchemeOption { return schemes.WithRho(rho) }

// WithOrderName selects the relabel scheme's locality ordering by name
// (degree, bfs, or window).
func WithOrderName(name string) SchemeOption { return schemes.WithOrderName(name) }

// Scheme constructors (functional options; see each internal/schemes
// constructor for defaults).

// NewUniform builds the uniform edge-sampling scheme (§4.2.2).
func NewUniform(opts ...SchemeOption) (Scheme, error) { return schemes.NewUniform(opts...) }

// NewVertexSample builds the vertex-sampling scheme (§2's sampling class).
func NewVertexSample(opts ...SchemeOption) (Scheme, error) { return schemes.NewVertexSample(opts...) }

// NewSpectral builds the spectral sparsification scheme (§4.2.1).
func NewSpectral(opts ...SchemeOption) (Scheme, error) { return schemes.NewSpectral(opts...) }

// NewTR builds a Triangle Reduction scheme (§4.3).
func NewTR(opts ...SchemeOption) (Scheme, error) { return schemes.NewTR(opts...) }

// NewLowDegree builds the degree <= 1 removal scheme (§4.4).
func NewLowDegree(opts ...SchemeOption) (Scheme, error) { return schemes.NewLowDegree(opts...) }

// NewLowDegreeIterative builds the fixpoint leaf-peeling variant.
func NewLowDegreeIterative(opts ...SchemeOption) (Scheme, error) {
	return schemes.NewLowDegreeIterative(opts...)
}

// NewSpanner builds the O(k)-spanner scheme (§4.5.3).
func NewSpanner(opts ...SchemeOption) (Scheme, error) { return schemes.NewSpanner(opts...) }

// NewCutSparsify builds the Benczúr–Karger cut sparsifier scheme (§4.6).
func NewCutSparsify(opts ...SchemeOption) (Scheme, error) { return schemes.NewCutSparsify(opts...) }

// NewSummarize builds the lossy ε-summarization scheme (§4.5.4).
func NewSummarize(opts ...SchemeOption) (Scheme, error) { return schemes.NewSummarize(opts...) }

// NewRelabel builds the lossless gap-minimizing relabel scheme; its
// Result's VertexMap carries the permutation.
func NewRelabel(opts ...SchemeOption) (Scheme, error) { return schemes.NewRelabel(opts...) }

// NewPipeline chains schemes into one Scheme applied left to right.
func NewPipeline(stages ...Scheme) (*Pipeline, error) { return schemes.NewPipeline(stages...) }

// ParseScheme builds a Scheme (or Pipeline) from a registry spec:
//
//	spec   := stage ("|" stage)*
//	stage  := name [":" params]
//	params := key "=" value ("," key "=" value)*
//
// Defaults (typically WithSeed, WithWorkers) apply to every stage; explicit
// spec parameters win. SchemeSpec(ParseScheme(s)) round-trips.
func ParseScheme(spec string, defaults ...SchemeOption) (Scheme, error) {
	return schemes.Parse(spec, defaults...)
}

// NewScheme builds a registered scheme by name.
func NewScheme(name string, opts ...SchemeOption) (Scheme, error) {
	return schemes.New(name, opts...)
}

// SchemeSpec returns the spec string Parse round-trips for s.
func SchemeSpec(s Scheme) string { return schemes.Spec(s) }

// RegisterScheme adds a scheme to the registry, making it addressable by
// name from specs, pipelines, both CLIs, and the experiment harness.
func RegisterScheme(r SchemeInfo) { schemes.Register(r) }

// LookupScheme returns the registration for name.
func LookupScheme(name string) (SchemeInfo, bool) { return schemes.Lookup(name) }

// SchemeNames returns all registered scheme names, sorted.
func SchemeNames() []string { return schemes.Names() }

// Uniform keeps every edge independently with probability keep (§4.2.2).
//
// Deprecated: use NewUniform (or ParseScheme("uniform:p=...")); the flat
// functions remain for compatibility.
func Uniform(g *Graph, keep float64, seed uint64, workers int) *Result {
	return schemes.Uniform(g, keep, seed, workers)
}

// SpectralOptions configures SpectralSparsify; see schemes.SpectralOptions.
type SpectralOptions = schemes.SpectralOptions

// Upsilon variants for SpectralSparsify.
const (
	UpsilonLogN   = schemes.UpsilonLogN
	UpsilonAvgDeg = schemes.UpsilonAvgDeg
)

// SpectralSparsify samples edge e with probability min(1, Υ/min(du, dv)),
// preserving the graph spectrum (§4.2.1).
//
// Deprecated: use NewSpectral (or ParseScheme("spectral:p=...")).
func SpectralSparsify(g *Graph, opts SpectralOptions) *Result { return schemes.Spectral(g, opts) }

// TROptions configures TriangleReduction; see schemes.TROptions.
type TROptions = schemes.TROptions

// Triangle Reduction variants (§4.3).
const (
	TRBasic     = schemes.TRBasic
	TREO        = schemes.TREO
	TRCT        = schemes.TRCT
	TRMaxWeight = schemes.TRMaxWeight
	TRCollapse  = schemes.TRCollapse
)

// TriangleReduction applies Triangle p-x-Reduction in the selected variant.
//
// Deprecated: use NewTR (or ParseScheme("tr-eo:p=...")).
func TriangleReduction(g *Graph, opts TROptions) *Result {
	return schemes.TriangleReduction(g, opts)
}

// RemoveLowDegree deletes degree <= 1 vertices (their edges vanish, IDs are
// kept), preserving betweenness centrality structure (§4.4).
//
// Deprecated: use NewLowDegree (or ParseScheme("lowdeg")).
func RemoveLowDegree(g *Graph, workers int) *Result { return schemes.LowDegree(g, workers) }

// CutSparsify builds a Benczúr–Karger cut sparsifier (the §4.6 extension
// scheme): edges sampled inversely to their Nagamochi–Ibaraki strength and
// reweighted, preserving all cut weights within 1±ε for rho = O(log n/ε²);
// rho <= 0 picks 8·ln n.
//
// Deprecated: use NewCutSparsify (or ParseScheme("cut:rho=...")).
func CutSparsify(g *Graph, rho float64, seed uint64, workers int) *Result {
	return schemes.CutSparsify(g, rho, seed, workers)
}

// VertexSample keeps every vertex independently with probability keep;
// edges incident to removed vertices vanish (the vertex-sampling class of
// §2).
//
// Deprecated: use NewVertexSample (or ParseScheme("vertexsample:p=...")).
func VertexSample(g *Graph, keep float64, seed uint64, workers int) *Result {
	return schemes.VertexSample(g, keep, seed, workers)
}

// MinCut returns the weight of a global minimum cut (Stoer–Wagner; O(n^3),
// for verification-scale graphs).
func MinCut(g *Graph) float64 { return mincut.StoerWagner(g) }

// SpannerOptions configures Spanner; see schemes.SpannerOptions.
type SpannerOptions = schemes.SpannerOptions

// Inter-cluster edge modes for Spanner.
const (
	PerVertex      = schemes.PerVertex
	PerClusterPair = schemes.PerClusterPair
)

// Spanner derives an O(k)-spanner via low-diameter decomposition (§4.5.3).
//
// Deprecated: use NewSpanner (or ParseScheme("spanner:k=...")).
func Spanner(g *Graph, opts SpannerOptions) *Result { return schemes.Spanner(g, opts) }

// SummarizeOptions configures Summarize; see summarize.Options.
type SummarizeOptions = summarize.Options

// Summary is a lossy ε-summary: supervertices, superedges, and corrections.
type Summary = summarize.Summary

// Summarize builds a SWeG-style lossy ε-summary (§4.5.4).
func Summarize(g *Graph, opts SummarizeOptions) *Summary { return summarize.Summarize(g, opts) }

// The programming model, for writing custom compression kernels (§4.1).

// SG is the global container object available to kernels.
type SG = core.SG

// Rand is the per-kernel-instance random stream.
type Rand = rng.Rand

// Kernel argument views.
type (
	EdgeView     = core.EdgeView
	VertexView   = core.VertexView
	TriangleView = core.TriangleView
	SubgraphView = core.SubgraphView
)

// Kernel types.
type (
	EdgeKernel     = core.EdgeKernel
	VertexKernel   = core.VertexKernel
	TriangleKernel = core.TriangleKernel
	SubgraphKernel = core.SubgraphKernel
)

// NewSG returns a kernel execution context over g. Run kernels with its
// Run*Kernel methods, then call Materialize for the compressed graph.
func NewSG(g *Graph, seed uint64, workers int) *SG { return core.New(g, seed, workers) }

// Stage-2 algorithms.

// BFSResult is the parent tree and level of every vertex.
type BFSResult = traverse.BFSResult

// BFS runs a parallel breadth-first search from root.
func BFS(g *Graph, root NodeID, workers int) *BFSResult { return traverse.BFS(g, root, workers) }

// BFSOn is BFS over any Adjacency — in particular a PackedGraph, which it
// traverses in place, decoding lists on the fly.
func BFSOn(g Adjacency, root NodeID, workers int) *BFSResult {
	return traverse.BFSOn(g, root, workers)
}

// PageRankOn is PageRank over any Adjacency (standard parameters), with
// numerics identical to PageRank on the equivalent Graph.
func PageRankOn(g Adjacency, workers int) []float64 {
	return centrality.PageRankOn(g, centrality.PageRankOptions{Workers: workers})
}

// Dijkstra returns exact shortest-path distances and the SSSP parent array.
func Dijkstra(g *Graph, root NodeID) ([]float64, []NodeID) { return traverse.Dijkstra(g, root) }

// DeltaStepping returns SSSP distances with bucketed parallel relaxation;
// delta <= 0 picks a heuristic bucket width.
func DeltaStepping(g *Graph, root NodeID, delta float64, workers int) []float64 {
	return traverse.DeltaStepping(g, root, delta, workers)
}

// Diameter returns the double-sweep diameter lower bound.
func Diameter(g *Graph, workers int) int32 {
	return traverse.DoubleSweepDiameter(g, 0, workers)
}

// PageRank returns the PageRank distribution (sums to 1) with standard
// parameters (damping 0.85).
func PageRank(g *Graph, workers int) []float64 {
	return centrality.PageRank(g, centrality.PageRankOptions{Workers: workers})
}

// PageRankOptions configures PageRankWith.
type PageRankOptions = centrality.PageRankOptions

// PageRankWith runs PageRank with explicit options.
func PageRankWith(g *Graph, opts PageRankOptions) []float64 { return centrality.PageRank(g, opts) }

// Betweenness returns exact Brandes betweenness centrality (O(nm)).
func Betweenness(g *Graph, workers int) []float64 { return centrality.Betweenness(g, workers) }

// BetweennessSampled estimates betweenness from the given sources.
func BetweennessSampled(g *Graph, sources []NodeID, workers int) []float64 {
	return centrality.BetweennessSampled(g, sources, workers)
}

// ConnectedComponents returns per-vertex component labels (smallest member
// ID).
func ConnectedComponents(g *Graph) []NodeID { return components.Labels(g) }

// ComponentCount returns the number of connected components.
func ComponentCount(g *Graph) int { return components.Count(g) }

// TriangleCount returns the exact number of triangles.
func TriangleCount(g *Graph, workers int) int64 { return triangles.Count(g, workers) }

// TrianglesPerVertex returns the per-vertex triangle counts.
func TrianglesPerVertex(g *Graph, workers int) []int64 { return triangles.PerVertex(g, workers) }

// TrianglesPerEdge returns the per-edge triangle counts — the input to the
// CT variant of Triangle Reduction.
func TrianglesPerEdge(g *Graph, workers int) []int64 { return triangles.PerEdge(g, workers) }

// TriangleCountApprox estimates the triangle count with DOULION edge
// sampling: each edge survives with probability p and the sampled count is
// scaled by p^-3.
func TriangleCountApprox(g *Graph, p float64, seed uint64, workers int) float64 {
	return triangles.CountApprox(g, p, seed, workers)
}

// TriangleCountOn is TriangleCount over any canonical-edge view — in
// particular a PackedGraph counted in place, bit-identical to the raw CSR.
func TriangleCountOn(a AdjacencyEdges, workers int) int64 {
	return triangles.CountOn(a, workers)
}

// TriangleCountApproxOn is TriangleCountApprox over any canonical-edge
// view; the DOULION coin flips key on canonical edge IDs, so the estimate is
// identical for every representation of the same graph.
func TriangleCountApproxOn(a AdjacencyEdges, p float64, seed uint64, workers int) float64 {
	return triangles.CountApproxOn(a, p, seed, workers)
}

// TriangleEngine is the reusable triangle-enumeration substrate: a
// rank-oriented forward CSR built once per graph, shared by counting,
// per-element counting, and triangle-kernel runs. The package-level
// triangle functions build a single-use engine internally; construct one
// explicitly to amortize it across repeated enumerations of the same graph.
type TriangleEngine = triangles.Engine

// NewTriangleEngine builds the enumeration substrate for g (undirected
// only; workers <= 0 uses all CPUs).
func NewTriangleEngine(g *Graph, workers int) *TriangleEngine {
	return triangles.NewEngine(g, workers)
}

// NewTriangleEngineOn builds the engine over any canonical-edge view — a
// PackedGraph's edges feed the oriented CSR directly, no unpack — with
// structure identical to the raw CSR's engine.
func NewTriangleEngineOn(a AdjacencyEdges, workers int) *TriangleEngine {
	return triangles.NewEngineOn(a, workers)
}

// MSTWeight returns the weight of a minimum spanning forest (Kruskal).
func MSTWeight(g *Graph) float64 { return mst.Kruskal(g).Weight }

// ColoringNumber returns the Szekeres–Wilf coloring number
// (degeneracy + 1).
func ColoringNumber(g *Graph) int { return coloring.ColoringNumber(g) }

// MatchingSize returns the size of a greedy maximal matching.
func MatchingSize(g *Graph) int { return matching.Size(g) }

// IndependentSetSize returns the best greedy maximal-independent-set size.
func IndependentSetSize(g *Graph) int { return mis.BestSize(g) }

// Accuracy metrics (§5).

// KLDivergence returns the Kullback–Leibler divergence D(P||Q) in bits.
func KLDivergence(p, q []float64) float64 { return metrics.KLDivergence(p, q) }

// JensenShannon returns the Jensen–Shannon divergence.
func JensenShannon(p, q []float64) float64 { return metrics.JensenShannon(p, q) }

// ReorderedPairs returns the fraction of vertex pairs whose order under two
// score vectors inverted (normalized by n^2).
func ReorderedPairs(orig, comp []float64) float64 { return metrics.ReorderedPairs(orig, comp) }

// ReorderedNeighborPairs is the O(m) neighboring-pairs variant.
func ReorderedNeighborPairs(g *Graph, orig, comp []float64) float64 {
	return metrics.ReorderedNeighborPairs(g, orig, comp)
}

// BFSCriticalRetention returns |Ẽcr|/|Ecr| averaged over the given roots —
// the BFS accuracy metric of §5.
func BFSCriticalRetention(orig, compressed *Graph, roots []NodeID, workers int) float64 {
	return metrics.BFSCriticalMulti(orig, compressed, roots, workers)
}

// Quality bundles the §5 accuracy metrics of one compressed variant against
// its original — the payload of the server's /compare endpoint.
type Quality = metrics.Quality

// CompareGraphs computes the Quality of comp against orig. The vertex set
// must be unchanged (no collapse/summarize variants); workers <= 0 means
// all CPUs.
func CompareGraphs(orig, comp *Graph, workers int) (*Quality, error) {
	return metrics.CompareGraphs(orig, comp, workers)
}

// CompareGraphsOn is CompareGraphs over any pair of canonical-edge views
// (raw, packed, or mixed), with bit-identical Quality for the same logical
// graphs.
func CompareGraphsOn(orig, comp AdjacencyEdges, workers int) (*Quality, error) {
	return metrics.CompareGraphsOn(orig, comp, workers)
}

// DegreeDistribution returns the fraction of vertices per degree.
func DegreeDistribution(g *Graph) []float64 { return metrics.DegreeDistribution(g) }

// PowerLawSlope fits the degree distribution's log-log slope and R^2.
func PowerLawSlope(dist []float64) (slope, r2 float64) { return metrics.PowerLawSlope(dist) }

// Serving: the slimgraphd compress-and-query service (cmd/slimgraphd), for
// embedding in-process. See internal/server for the HTTP API.

// Server is the slimgraphd service: a catalog of resident graphs, a
// single-flight compressed-variant cache, and the HTTP/JSON handler tying
// them together.
type Server = server.Server

// ServerOptions configures NewServer: variant-cache capacity, the
// heavy-request concurrency bound, the per-request worker-budget cap, and
// the observability hooks (metrics Registry, request Logger).
type ServerOptions = server.Options

// ServerCacheStats is a snapshot of the variant cache counters.
type ServerCacheStats = server.CacheStats

// Observability: the dependency-free metrics and request-tracing core
// behind GET /metrics and the X-Slimgraph-Request header. See internal/obs.

// MetricsRegistry holds named metric families (counters, gauges,
// fixed-bucket histograms) and renders Prometheus text exposition; every
// server records into one and serves it on GET /metrics.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metrics registry — pass it via
// ServerOptions.Registry to share one exposition across components, or let
// each server create its own.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// MetricLabel is one key=value dimension of a metric.
type MetricLabel = obs.Label

// HistogramSnapshot is a point-in-time histogram copy: per-bucket counts
// over fixed bounds, mergeable exactly when bounds match — the type the
// cluster's per-shard latency stats travel as.
type HistogramSnapshot = obs.HistogramSnapshot

// RequestLogger receives one structured record per HTTP request.
type RequestLogger = obs.Logger

// NewTextRequestLogger returns a RequestLogger writing one key=value line
// per request to w, safe for concurrent use.
func NewTextRequestLogger(w io.Writer) RequestLogger { return obs.NewTextLogger(w) }

// RequestIDHeader is the HTTP header carrying the request ID, assigned by
// the server when absent and forwarded verbatim on every coordinator→shard
// sub-request.
const RequestIDHeader = obs.RequestIDHeader

// ServerBuildInfo identifies a serving binary (module version, Go
// toolchain, VCS revision); it rides on /v1/stats.
type ServerBuildInfo = obs.BuildInfo

// Memory policies for graphs in the server catalog: raw CSR or the
// succinct packed form traversed in place.
const (
	MemoryRaw    = server.MemoryRaw
	MemoryPacked = server.MemoryPacked
)

// NewServer returns a server; serve its Handler() with net/http, or preload
// graphs via AddGraph/AddGenerated. The catalog starts empty unless
// ServerOptions.DataDir holds snapshots from a previous run, which are
// re-attached memory-mapped (the warm-restart path). NewServer fails only
// when the data directory cannot be opened or scanned.
func NewServer(opts ServerOptions) (*Server, error) { return server.New(opts) }

// Distributed compression (§7.3), simulated: see internal/distributed.

// DistributedEngine runs registry schemes over degree-partitioned vertex
// ranges with one goroutine per simulated rank; the output is identical for
// any rank count because scheme decisions are keyed by global element IDs.
type DistributedEngine = distributed.Engine

// DistributedRun is the outcome of a distributed compression.
type DistributedRun = distributed.Run

// PartitionRange is one rank's contiguous vertex range.
type PartitionRange = distributed.Range

// PartitionByDegree splits a graph's vertices into parts contiguous ranges
// balanced by degree+1 — the 1D partitioning the cluster's shards use to
// agree on vertex ownership.
func PartitionByDegree(g *Graph, parts int) []PartitionRange {
	return distributed.PartitionByDegree(g, parts)
}

// Sharded serving: a coordinator + N shard cluster behind the same
// /v1/graphs HTTP API, byte-identical to a single node for a fixed seed at
// workers=1. See internal/cluster and cmd/slimgraphd -role.

// ClusterOptions configures a Coordinator: shard base URLs in rank order,
// the per-shard sub-request deadline, an optional HTTP client, and the
// fault-tolerance knobs (retry policy and budget, circuit-breaker
// threshold/cooldown, background health-probe interval).
type ClusterOptions = cluster.Options

// Coordinator serves the public API by scatter/gathering over shards; it
// implements the server's Catalog and QueryBackend seams, so
// server.NewWithBackend(coord, coord, opts) is a drop-in cluster frontend
// (NewLocalCluster wires this up for you).
type Coordinator = cluster.Coordinator

// ClusterShard is one cluster member: a full local server extended with
// the /internal/v1 replication and partial-query protocol.
type ClusterShard = cluster.Shard

// LocalCluster is an in-process coordinator + N shards on loopback
// listeners — the cluster analog of NewServer for tests and demos.
type LocalCluster = cluster.LocalCluster

// NewCoordinator returns a coordinator over the configured shards.
func NewCoordinator(opts ClusterOptions) (*Coordinator, error) {
	return cluster.NewCoordinator(opts)
}

// NewClusterShard returns a shard around a fresh local server. It fails
// only when opts.DataDir cannot be opened or scanned.
func NewClusterShard(opts ServerOptions) (*ClusterShard, error) { return cluster.NewShard(opts) }

// NewLocalCluster boots n shards on ephemeral loopback ports plus a
// coordinator; serve its Front.Handler() or query it in-process.
func NewLocalCluster(n int, shardOpts ServerOptions, opts ClusterOptions) (*LocalCluster, error) {
	return cluster.StartLocal(n, shardOpts, opts)
}

// Resilience: the fault-tolerance layer the cluster coordinator and server
// ride on — retry with deterministic jitter, per-shard circuit breakers,
// deadline propagation, and seeded fault injection. See internal/resilience.

// RetryPolicy shapes retries of idempotent shard sub-requests: attempt
// count, exponential backoff bounds, and the seed of the deterministic
// jitter (pass via ClusterOptions.Retry).
type RetryPolicy = resilience.RetryPolicy

// BreakerState is a circuit breaker's position: BreakerClosed,
// BreakerHalfOpen, or BreakerOpen — the value of the
// slimgraph_shard_breaker_state gauge and Coordinator.BreakerState.
type BreakerState = resilience.BreakerState

// Circuit-breaker positions, ordered so the metric gauge reads naturally:
// 0 closed (routable), 1 half-open (probing), 2 open (shed).
const (
	BreakerClosed   = resilience.BreakerClosed
	BreakerHalfOpen = resilience.BreakerHalfOpen
	BreakerOpen     = resilience.BreakerOpen
)

// FaultRule is one deterministic fault-injection rule: request matchers
// (path/host/method substrings), firing controls (probability, seed,
// after, times), and the action (drop, delay, status, truncate).
type FaultRule = resilience.FaultRule

// FaultInjector applies FaultRules as a client RoundTripper or a server
// middleware; identical seeds replay identical fault sequences.
type FaultInjector = resilience.Injector

// NewFaultInjector builds an injector over the given rules (first matching
// rule that fires wins).
func NewFaultInjector(rules ...*FaultRule) *FaultInjector {
	return resilience.NewInjector(rules...)
}

// ParseFaultSpec parses the -fault-inject grammar: ";"-separated rules of
// ","-separated key=value fields, e.g.
// "path=/internal/v1,p=0.1,seed=7,status=503;path=/compress,times=1,drop".
func ParseFaultSpec(spec string) (*FaultInjector, error) {
	return resilience.ParseFaultSpec(spec)
}

// DeadlineHeader propagates the caller's context deadline on sub-requests
// (Unix nanoseconds); servers clamp their request context to it, so a
// shard never keeps computing for a coordinator that has given up.
const DeadlineHeader = resilience.DeadlineHeader
